#include "monitor/continuous_tracking.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

TEST(TrackingTest, Validation) {
  EXPECT_FALSE(TrackingServer::Create(8, {.eps = 0.0}, 0, 4).ok());
  EXPECT_FALSE(TrackingServer::Create(8, {.eps = 1.5}, 0, 4).ok());
  EXPECT_FALSE(TrackingServer::Create(8, {.eps = 0.2, .k = 0}, 0, 4).ok());
  EXPECT_FALSE(TrackingServer::Create(8, {.eps = 0.2}, 0, 0).ok());
  EXPECT_FALSE(RunTrackingSimulation(Matrix(), 4, {}, 10).ok());
}

class TrackingPayloadTest : public ::testing::TestWithParam<SyncPayload> {};

TEST_P(TrackingPayloadTest, ErrorBoundedAtAllCheckpoints) {
  const Matrix a = GenerateLowRankPlusNoise({.rows = 800,
                                             .cols = 16,
                                             .rank = 4,
                                             .decay = 0.7,
                                             .top_singular_value = 30.0,
                                             .noise_stddev = 0.4,
                                             .seed = 1});
  TrackingOptions options;
  options.eps = 0.25;
  options.k = 3;
  options.payload = GetParam();
  auto result = RunTrackingSimulation(a, 4, options, 50);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->checkpoints, 10u);
  EXPECT_GT(result->num_syncs, 0u);
  // The continuous guarantee: at every checkpoint, coverr <= eps * mass
  // (SVS payload certified with randomized slack).
  const double slack =
      GetParam() == SyncPayload::kSvsCompressed ? 2.0 : 1.0;
  EXPECT_LE(result->worst_error_ratio, slack * options.eps)
      << "worst ratio " << result->worst_error_ratio;
}

INSTANTIATE_TEST_SUITE_P(Payloads, TrackingPayloadTest,
                         ::testing::Values(SyncPayload::kDeltaSketch,
                                           SyncPayload::kSvsCompressed));

TEST(TrackingTest, SvsPayloadSavesWordsOnLowRankStreams) {
  // The paper's §1.5 open question, answered empirically: compressing
  // sync payloads with Decomp+SVS cuts monitoring communication on
  // streams with decaying spectra.
  const Matrix a = GenerateLowRankPlusNoise({.rows = 1600,
                                             .cols = 24,
                                             .rank = 4,
                                             .decay = 0.6,
                                             .top_singular_value = 40.0,
                                             .noise_stddev = 0.2,
                                             .seed = 2});
  TrackingOptions plain;
  plain.eps = 0.25;
  plain.k = 3;
  plain.payload = SyncPayload::kDeltaSketch;
  TrackingOptions compressed = plain;
  compressed.payload = SyncPayload::kSvsCompressed;

  auto plain_result = RunTrackingSimulation(a, 4, plain, 200);
  auto compressed_result = RunTrackingSimulation(a, 4, compressed, 200);
  ASSERT_TRUE(plain_result.ok());
  ASSERT_TRUE(compressed_result.ok());
  EXPECT_LT(compressed_result->total_words, plain_result->total_words);
}

TEST(TrackingTest, SyncCadenceSlowsAsMassGrows) {
  // The sync condition is relative to the global mass, so a stationary
  // stream triggers syncs at a harmonic (logarithmic) rate: the second
  // half of the stream must sync less than the first half.
  const Matrix a = GenerateGaussian(2000, 12, 1.0, 3);
  TrackingOptions options;
  options.eps = 0.3;
  auto first = RunTrackingSimulation(a.RowRange(0, 1000), 4, options, 1000);
  auto whole = RunTrackingSimulation(a, 4, options, 2000);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(whole.ok());
  const uint64_t second_half_syncs = whole->num_syncs - first->num_syncs;
  EXPECT_LT(second_half_syncs, first->num_syncs);
}

TEST(TrackingTest, CoordinatorEstimateValidFromColdStart) {
  // Even with a handful of rows the estimate must be within budget (cold
  // start syncs immediately).
  const Matrix a = GenerateGaussian(12, 6, 1.0, 4);
  TrackingOptions options;
  options.eps = 0.3;
  auto result = RunTrackingSimulation(a, 3, options, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->checkpoints, 12u);
  EXPECT_LE(result->worst_error_ratio, options.eps);
}

TEST(TrackingServerTest, MassAccounting) {
  auto server = TrackingServer::Create(4, {.eps = 0.2}, 0, 2);
  ASSERT_TRUE(server.ok());
  const double row[] = {1.0, 0.0, 0.0, 0.0};
  const bool wants_sync = server->Append(row);
  EXPECT_TRUE(wants_sync);  // cold start: no broadcast yet
  EXPECT_DOUBLE_EQ(server->unsynced_mass(), 1.0);
  auto payload = server->TakeSyncPayload(0.0);
  ASSERT_TRUE(payload.ok());
  EXPECT_DOUBLE_EQ(server->unsynced_mass(), 0.0);
  EXPECT_DOUBLE_EQ(server->synced_mass(), 1.0);
}

}  // namespace
}  // namespace distsketch
