// Fault injection against the tree-reduce driver: interior-node deaths
// re-parent the dead node's subtree to its nearest live ancestor, so the
// coordinator loses exactly the dead servers' local rows — nothing more.
// Integer-valued (+-1) inputs make the additive merges exact, so the
// degraded tree result must be *bit-identical* to a fault-free run on
// the same data with the lost shards emptied. Mass accounting follows
// the star protocols: every node reports its 1-word mass up front, so a
// node that dies stages later still widens the bound by a known amount.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "dist/countsketch_protocol.h"
#include "dist/exact_gram_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "linalg/blas.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

constexpr size_t kServers = 12;

Matrix SignData() { return GenerateSignMatrix(96, 7, /*seed=*/31); }

std::vector<Matrix> Parts(const Matrix& a) {
  return PartitionRows(a, kServers, PartitionScheme::kRoundRobin);
}

Cluster MakeCluster(std::vector<Matrix> parts) {
  auto cluster = Cluster::Create(std::move(parts), 0.2);
  DS_CHECK(cluster.ok());
  return std::move(*cluster);
}

/// The oracle for a run that lost `lost`: the same protocol, fault-free,
/// with the lost servers' shards emptied (0-row partitions).
Matrix OracleWithout(const std::vector<int>& lost, const Matrix& a,
                     SketchProtocol& protocol) {
  std::vector<Matrix> parts = Parts(a);
  for (int i : lost) parts[static_cast<size_t>(i)].SetZero(0, a.cols());
  Cluster cluster = MakeCluster(std::move(parts));
  auto result = protocol.Run(cluster);
  DS_CHECK(result.ok());
  return std::move(result->sketch);
}

// With fanout 3 over 12 servers, node 3 is an interior head: its
// children (4, 5) merge into it at stage 0 and it forwards to node 0.
TEST(TreeChaosTest, InteriorDeathLosesExactlyTheDeadNodesRows) {
  const Matrix a = SignData();
  FaultConfig config;
  // After node 3's own 1-word mass report (~t=4 of the id-order report
  // round) but before its uplink stage: sends to or from node 3 fail
  // from t=8 on, so its subtree re-parents to node 0.
  config.per_server[3].die_at_time = 8.0;
  config.seed = 5;

  ExactGramProtocol protocol({.topology = MergeTopologyOptions::Tree(3)});
  Cluster cluster = MakeCluster(Parts(a));
  cluster.InstallFaultPlan(config);
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());

  ASSERT_EQ(result->degraded.lost_servers, std::vector<int>{3});
  // The up-front report round landed before the death: mass is known and
  // the widening is exactly the dead shard's Frobenius mass.
  EXPECT_TRUE(result->degraded.mass_known);
  EXPECT_DOUBLE_EQ(result->degraded.BoundWidening(),
                   SquaredFrobeniusNorm(Parts(a)[3]));

  // Children 4 and 5 re-parent: their contributions survive, so the
  // result equals a fault-free run missing only shard 3 — bit for bit
  // (integer data, exact additive merge).
  EXPECT_TRUE(result->sketch == OracleWithout({3}, a, protocol));
}

TEST(TreeChaosTest, DeathDuringReportRoundLeavesMassUnknown) {
  const Matrix a = SignData();
  FaultConfig config;
  config.per_server[6].die_at_time = 0.0;  // dead before its report
  config.seed = 5;

  ExactGramProtocol protocol({.topology = MergeTopologyOptions::Tree(3)});
  Cluster cluster = MakeCluster(Parts(a));
  cluster.InstallFaultPlan(config);
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());

  ASSERT_EQ(result->degraded.lost_servers, std::vector<int>{6});
  EXPECT_FALSE(result->degraded.mass_known);
  EXPECT_TRUE(std::isinf(result->degraded.BoundWidening()));
  EXPECT_TRUE(result->sketch == OracleWithout({6}, a, protocol));
}

TEST(TreeChaosTest, MultipleInteriorDeathsCascadeReparenting) {
  const Matrix a = SignData();
  FaultConfig config;
  // Nodes 3 and 6 are both stage-1 heads under node 0: both subtrees
  // must climb to node 0 (and node 0's merge still reaches the
  // coordinator).
  config.per_server[3].die_at_time = 8.0;
  config.per_server[6].die_at_time = 8.0;
  config.seed = 5;

  ExactGramProtocol protocol({.topology = MergeTopologyOptions::Tree(3)});
  Cluster cluster = MakeCluster(Parts(a));
  cluster.InstallFaultPlan(config);
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(result->degraded.lost_servers.size(), 2u);
  EXPECT_TRUE(result->degraded.mass_known);
  EXPECT_TRUE(result->sketch == OracleWithout({3, 6}, a, protocol));
}

TEST(TreeChaosTest, FlakyLinksRetryWithoutChangingTheAnswer) {
  const Matrix a = SignData();
  FaultConfig config;
  config.default_profile.drop_prob = 0.1;
  config.default_profile.truncate_prob = 0.1;
  config.default_profile.corrupt_prob = 0.05;
  config.seed = 23;

  ExactGramProtocol protocol({.topology = MergeTopologyOptions::Tree(3)});
  Cluster faulty = MakeCluster(Parts(a));
  faulty.InstallFaultPlan(config);
  auto degraded_run = protocol.Run(faulty);
  ASSERT_TRUE(degraded_run.ok());
  ASSERT_FALSE(degraded_run->degraded.degraded())
      << "this seed is expected to retry through every fault";
  EXPECT_GT(degraded_run->comm.retransmit_words, 0u);

  Cluster ideal = MakeCluster(Parts(a));
  auto clean_run = protocol.Run(ideal);
  ASSERT_TRUE(clean_run.ok());
  // Retries re-send identical payloads; the merged result is unchanged.
  // (Fault mode adds the 1-word mass reports, so word totals differ.)
  EXPECT_TRUE(degraded_run->sketch == clean_run->sketch);
}

TEST(TreeChaosTest, CountSketchRoutesSeedAroundDeadForwarder) {
  const Matrix a = SignData();
  FaultConfig config;
  config.per_server[3].die_at_time = 0.0;  // dead before the downlink
  config.seed = 5;

  CountSketchProtocol protocol({.eps = 0.4,
                                .oversample = 2.0,
                                .seed = 77,
                                .topology = MergeTopologyOptions::Tree(3)});
  Cluster cluster = MakeCluster(Parts(a));
  cluster.InstallFaultPlan(config);
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());

  // Node 3 forwarded the seed to 4 and 5; with it dead they fetch the
  // seed from the next live ancestor instead, compress their shards
  // under the same hashes, and only shard 3 is missing from the sum.
  ASSERT_EQ(result->degraded.lost_servers, std::vector<int>{3});
  EXPECT_TRUE(result->sketch == OracleWithout({3}, a, protocol));
}

TEST(TreeChaosTest, ChaosRunsBitIdenticalAcrossThreadCounts) {
  const Matrix a = SignData();
  FaultConfig config;
  config.default_profile.drop_prob = 0.12;
  config.default_profile.truncate_prob = 0.08;
  config.default_profile.transient_fail_prob = 0.05;
  config.default_profile.latency_jitter = 0.25;
  config.per_server[3].die_at_time = 8.0;
  config.seed = 41;

  const size_t saved = ThreadPool::GlobalThreads();
  FdMergeProtocol protocol(
      {.eps = 0.3, .k = 0, .topology = MergeTopologyOptions::Tree(3)});

  ThreadPool::SetGlobalThreads(1);
  Cluster base_cluster = MakeCluster(Parts(a));
  base_cluster.InstallFaultPlan(config);
  auto base = protocol.Run(base_cluster);
  ASSERT_TRUE(base.ok());
  const uint64_t base_digest =
      TranscriptDigest(base_cluster.log(), base_cluster.faults());

  for (const size_t threads : {2u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    Cluster cluster = MakeCluster(Parts(a));
    cluster.InstallFaultPlan(config);
    auto got = protocol.Run(cluster);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->sketch == base->sketch) << "threads=" << threads;
    EXPECT_EQ(TranscriptDigest(cluster.log(), cluster.faults()),
              base_digest)
        << "threads=" << threads;
    EXPECT_EQ(got->degraded.lost_servers, base->degraded.lost_servers);
    EXPECT_EQ(got->comm.retransmit_words, base->comm.retransmit_words);
  }
  ThreadPool::SetGlobalThreads(saved);
}

}  // namespace
}  // namespace distsketch
