// Systematic guarantee sweep: every covariance-sketch protocol, across
// server counts, accuracies and spectra, certified against its own
// theorem's budget. This is the regression net for the whole protocol
// layer — any change that silently weakens a guarantee fails here.

#include <cmath>
#include <optional>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "dist/adaptive_sketch_protocol.h"
#include "dist/exact_gram_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "dist/row_sampling_protocol.h"
#include "dist/svs_protocol.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

enum class Workload { kLowRank, kZipf, kSign, kSparse };

Matrix MakeWorkload(Workload w, uint64_t seed) {
  switch (w) {
    case Workload::kLowRank:
      return GenerateLowRankPlusNoise({.rows = 256,
                                       .cols = 20,
                                       .rank = 4,
                                       .decay = 0.7,
                                       .top_singular_value = 30.0,
                                       .noise_stddev = 0.3,
                                       .seed = seed});
    case Workload::kZipf:
      return GenerateZipfSpectrum(
          {.rows = 256, .cols = 20, .alpha = 0.9, .seed = seed});
    case Workload::kSign:
      return GenerateSignMatrix(256, 20, seed);
    case Workload::kSparse:
      return GenerateSparse(
          {.rows = 256, .cols = 20, .density = 0.15, .seed = seed});
  }
  return {};
}

std::string WorkloadName(Workload w) {
  switch (w) {
    case Workload::kLowRank:
      return "lowrank";
    case Workload::kZipf:
      return "zipf";
    case Workload::kSign:
      return "sign";
    case Workload::kSparse:
      return "sparse";
  }
  return "?";
}

using SweepParam = std::tuple<size_t, double, Workload>;

class GuaranteeSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    const auto [s, eps, workload] = GetParam();
    s_ = s;
    eps_ = eps;
    a_ = MakeWorkload(workload, 17);
    auto cluster = Cluster::Create(
        PartitionRows(a_, s_, PartitionScheme::kRoundRobin), eps_);
    ASSERT_TRUE(cluster.ok());
    cluster_.emplace(std::move(*cluster));
  }

  size_t s_ = 0;
  double eps_ = 0.0;
  Matrix a_;
  std::optional<Cluster> cluster_;
};

TEST_P(GuaranteeSweep, ExactGramIsExact) {
  ExactGramProtocol protocol;
  auto result = protocol.Run(*cluster_);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(CovarianceError(a_, result->sketch),
            1e-6 * SquaredFrobeniusNorm(a_));
}

TEST_P(GuaranteeSweep, FdMergeEpsZero) {
  FdMergeProtocol protocol({.eps = eps_, .k = 0});
  auto result = protocol.Run(*cluster_);
  ASSERT_TRUE(result.ok());
  // Merge-of-sketches constant: certify at 2 eps.
  EXPECT_LE(CovarianceError(a_, result->sketch),
            2.0 * eps_ * SquaredFrobeniusNorm(a_) * (1.0 + 1e-9));
}

TEST_P(GuaranteeSweep, FdMergeEpsK) {
  FdMergeProtocol protocol({.eps = eps_, .k = 3});
  auto result = protocol.Run(*cluster_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsEpsKSketch(a_, result->sketch, 2.0 * eps_, 3));
}

TEST_P(GuaranteeSweep, AdaptiveEpsK) {
  AdaptiveSketchProtocol protocol({.eps = eps_, .k = 3, .seed = 23});
  auto result = protocol.Run(*cluster_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsEpsKSketch(a_, result->sketch, 3.0 * eps_, 3));
}

TEST_P(GuaranteeSweep, SvsQuadratic) {
  SvsProtocol protocol({.alpha = eps_ / 4.0, .delta = 0.05, .seed = 29});
  auto result = protocol.Run(*cluster_);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(CovarianceError(a_, result->sketch),
            eps_ * SquaredFrobeniusNorm(a_) * (1.0 + 1e-9));
}

TEST_P(GuaranteeSweep, RowSampling) {
  RowSamplingProtocol protocol(
      {.eps = eps_, .oversample = 6.0, .seed = 31});
  auto result = protocol.Run(*cluster_);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(CovarianceError(a_, result->sketch),
            eps_ * SquaredFrobeniusNorm(a_) * (1.0 + 1e-9));
}

TEST_P(GuaranteeSweep, DeterministicCostExactlyLinearInS) {
  FdMergeProtocol protocol({.eps = eps_, .k = 3});
  auto result = protocol.Run(*cluster_);
  ASSERT_TRUE(result.ok());
  // Every server ships at most l = 3 + ceil(3/eps) rows of d words.
  const uint64_t l = 3 + static_cast<uint64_t>(std::ceil(3.0 / eps_));
  EXPECT_LE(result->comm.total_words, s_ * l * a_.cols());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GuaranteeSweep,
    ::testing::Combine(::testing::Values(2, 5, 16),
                       ::testing::Values(0.15, 0.35),
                       ::testing::Values(Workload::kLowRank, Workload::kZipf,
                                         Workload::kSign,
                                         Workload::kSparse)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_eps" +
             std::to_string(static_cast<int>(std::get<1>(info.param) *
                                             100)) +
             "_" + WorkloadName(std::get<2>(info.param));
    });

}  // namespace
}  // namespace distsketch
