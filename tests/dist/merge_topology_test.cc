// MergeTopology structural invariants: every server sends exactly one
// uplink; a node transmits strictly after all of its children; star,
// tree and pipeline produce the documented shapes; and the schedule is a
// pure function of (s, options).

#include "dist/merge_topology.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace distsketch {
namespace {

// Every node appears in exactly one stage, children send at strictly
// earlier stages than their parent, and each child list matches the
// parent pointers.
void CheckInvariants(const MergeTopology& topo) {
  const size_t s = topo.num_servers();
  std::set<int> seen;
  for (const auto& stage : topo.stages()) {
    for (int node : stage) {
      EXPECT_TRUE(seen.insert(node).second) << "node sends twice: " << node;
    }
  }
  EXPECT_EQ(seen.size(), s);
  size_t root_count = 0;
  for (size_t i = 0; i < s; ++i) {
    const auto& node = topo.node(i);
    if (node.parent == kCoordinator) {
      ++root_count;
    } else {
      const auto& parent = topo.node(static_cast<size_t>(node.parent));
      EXPECT_LT(node.stage, parent.stage)
          << "node " << i << " sends at or after its parent";
      bool listed = false;
      for (int c : parent.children) listed |= (c == static_cast<int>(i));
      EXPECT_TRUE(listed) << "node " << i << " missing from parent's children";
    }
    for (int c : node.children) {
      EXPECT_EQ(topo.node(static_cast<size_t>(c)).parent,
                static_cast<int>(i));
    }
  }
  EXPECT_EQ(root_count, topo.top_width());
  EXPECT_EQ(topo.roots().size(), topo.top_width());
}

TEST(MergeTopologyTest, StarIsOneStageAllToCoordinator) {
  auto topo = MergeTopology::Build(16, MergeTopologyOptions::Star());
  ASSERT_TRUE(topo.ok());
  CheckInvariants(*topo);
  EXPECT_EQ(topo->depth(), 1u);
  EXPECT_EQ(topo->top_width(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(topo->node(i).parent, kCoordinator);
    EXPECT_TRUE(topo->node(i).children.empty());
  }
  EXPECT_EQ(topo->max_inbound(), 16u);
}

TEST(MergeTopologyTest, TreeShapesMatchTheAnalyticSchedule) {
  // 1024 servers under fanout 8: 1024 -> 128 -> 16 -> 2 live heads, the
  // final two go to the coordinator. Coordinator inbound = 2.
  auto topo = MergeTopology::Build(1024, MergeTopologyOptions::Tree(8));
  ASSERT_TRUE(topo.ok());
  CheckInvariants(*topo);
  EXPECT_EQ(topo->top_width(), 2u);
  // A head that survives every level absorbs fanout-1 children per
  // level, so the merge bottleneck is (fanout-1)*levels — far below the
  // star's s-wide coordinator funnel.
  EXPECT_LE(topo->max_inbound(), 7u * topo->depth());
  EXPECT_LT(topo->max_inbound(), 64u);

  // 256 -> 32 -> 4 heads.
  auto t256 = MergeTopology::Build(256, MergeTopologyOptions::Tree(8));
  ASSERT_TRUE(t256.ok());
  CheckInvariants(*t256);
  EXPECT_EQ(t256->top_width(), 4u);

  // s <= fanout degenerates to a star-shaped single stage.
  auto small = MergeTopology::Build(5, MergeTopologyOptions::Tree(8));
  ASSERT_TRUE(small.ok());
  CheckInvariants(*small);
  EXPECT_EQ(small->depth(), 1u);
  EXPECT_EQ(small->top_width(), 5u);
}

TEST(MergeTopologyTest, PipelineIsAChainEndingAtTheCoordinator) {
  auto topo = MergeTopology::Build(6, MergeTopologyOptions::Pipeline());
  ASSERT_TRUE(topo.ok());
  CheckInvariants(*topo);
  EXPECT_EQ(topo->top_width(), 1u);
  EXPECT_EQ(topo->max_inbound(), 1u);
  EXPECT_EQ(topo->depth(), 6u);
}

TEST(MergeTopologyTest, SingleServerAlwaysTalksToTheCoordinator) {
  for (const MergeTopologyOptions& options :
       {MergeTopologyOptions::Star(), MergeTopologyOptions::Tree(4),
        MergeTopologyOptions::Pipeline()}) {
    auto topo = MergeTopology::Build(1, options);
    ASSERT_TRUE(topo.ok());
    CheckInvariants(*topo);
    EXPECT_EQ(topo->top_width(), 1u);
    EXPECT_EQ(topo->node(0).parent, kCoordinator);
  }
}

TEST(MergeTopologyTest, InvalidShapesAreRejected) {
  EXPECT_FALSE(MergeTopology::Build(0, MergeTopologyOptions::Star()).ok());
  EXPECT_FALSE(MergeTopology::Build(8, MergeTopologyOptions::Tree(1)).ok());
  EXPECT_FALSE(MergeTopology::Build(8, MergeTopologyOptions::Tree(0)).ok());
}

TEST(MergeTopologyTest, KindNamesRoundTrip) {
  for (const TopologyKind kind :
       {TopologyKind::kStar, TopologyKind::kTree, TopologyKind::kPipeline}) {
    auto parsed = ParseTopologyKind(TopologyKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseTopologyKind("ring").ok());
}

TEST(MergeTopologyTest, InvariantsHoldAcrossFanoutsAndSizes) {
  for (const size_t s : {1u, 2u, 7u, 8u, 9u, 63u, 64u, 100u, 257u}) {
    for (const size_t fanout : {2u, 3u, 8u, 16u}) {
      auto topo = MergeTopology::Build(s, MergeTopologyOptions::Tree(fanout));
      ASSERT_TRUE(topo.ok()) << "s=" << s << " fanout=" << fanout;
      CheckInvariants(*topo);
      EXPECT_LE(topo->top_width(), fanout);
    }
  }
}

}  // namespace
}  // namespace distsketch
