// The parallel execution engine's core promise: every distributed
// protocol produces bit-identical sketches, word counts, and transcript
// digests for any thread count (1, 2, 8), with and without a fault plan
// installed. Per-server computation runs concurrently but writes only
// per-index slots; transfers and merges replay in server-index order, and
// each server's fault schedule is drawn from its own derived RNG stream —
// so the schedule cannot leak into any observable.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "dist/adaptive_sketch_protocol.h"
#include "dist/exact_gram_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "dist/low_rank_exact_protocol.h"
#include "dist/svs_protocol.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "sketch/frequent_directions.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

constexpr size_t kServers = 6;

struct ProtocolCase {
  std::string name;
  Matrix data;
  std::shared_ptr<SketchProtocol> protocol;
};

Matrix NoisyWorkload(uint64_t seed) {
  return GenerateLowRankPlusNoise({.rows = 180,
                                   .cols = 14,
                                   .rank = 4,
                                   .decay = 0.7,
                                   .top_singular_value = 30.0,
                                   .noise_stddev = 0.4,
                                   .seed = seed});
}

std::vector<ProtocolCase> AllProtocolCases() {
  std::vector<ProtocolCase> cases;
  cases.push_back({"fd_merge", NoisyWorkload(2),
                   std::make_shared<FdMergeProtocol>(
                       FdMergeOptions{.eps = 0.4, .k = 3})});
  cases.push_back({"svs", NoisyWorkload(3),
                   std::make_shared<SvsProtocol>(SvsProtocolOptions{
                       .alpha = 0.15, .delta = 0.05, .seed = 13})});
  cases.push_back({"adaptive_sketch", NoisyWorkload(4),
                   std::make_shared<AdaptiveSketchProtocol>(
                       AdaptiveSketchOptions{
                           .eps = 0.3, .k = 3, .delta = 0.1, .seed = 19})});
  cases.push_back({"exact_gram", NoisyWorkload(5),
                   std::make_shared<ExactGramProtocol>()});
  // Noise-free rank 3 <= 2k: the low-rank protocol's exactness
  // precondition.
  cases.push_back({"low_rank_exact",
                   GenerateLowRankPlusNoise({.rows = 90,
                                             .cols = 14,
                                             .rank = 3,
                                             .noise_stddev = 0.0,
                                             .seed = 6}),
                   std::make_shared<LowRankExactProtocol>(
                       LowRankExactOptions{.k = 2})});
  return cases;
}

FaultConfig MixedFaultPlan() {
  FaultConfig config;
  config.default_profile.drop_prob = 0.15;
  config.default_profile.duplicate_prob = 0.1;
  config.default_profile.truncate_prob = 0.1;
  config.default_profile.transient_fail_prob = 0.1;
  config.default_profile.latency_jitter = 0.2;
  config.seed = 77;
  return config;
}

struct RunObservables {
  Matrix sketch;
  CommStats comm;
  uint64_t digest = 0;
  size_t sketch_rows = 0;
};

RunObservables RunOnce(const ProtocolCase& c, bool with_faults,
                       size_t threads) {
  ThreadPool::SetGlobalThreads(threads);
  auto cluster = Cluster::Create(
      PartitionRows(c.data, kServers, PartitionScheme::kRoundRobin), 0.1);
  DS_CHECK(cluster.ok());
  if (with_faults) cluster->InstallFaultPlan(MixedFaultPlan());
  auto result = c.protocol->Run(*cluster);
  DS_CHECK(result.ok());
  RunObservables obs;
  obs.sketch = std::move(result->sketch);
  obs.comm = result->comm;
  obs.digest = TranscriptDigest(cluster->log(), cluster->faults());
  obs.sketch_rows = result->sketch_rows;
  return obs;
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = ThreadPool::GlobalThreads(); }
  void TearDown() override { ThreadPool::SetGlobalThreads(saved_threads_); }
  size_t saved_threads_ = 1;
};

TEST_F(ParallelDeterminismTest, AllProtocolsBitIdenticalAcrossThreadCounts) {
  for (const ProtocolCase& c : AllProtocolCases()) {
    for (bool with_faults : {false, true}) {
      const RunObservables base = RunOnce(c, with_faults, 1);
      for (size_t threads : {2u, 8u}) {
        const RunObservables got = RunOnce(c, with_faults, threads);
        SCOPED_TRACE(c.name + (with_faults ? " faults" : " ideal") +
                     " threads=" + std::to_string(threads));
        EXPECT_TRUE(got.sketch == base.sketch)
            << "sketch bits differ from the 1-thread run";
        EXPECT_EQ(got.sketch_rows, base.sketch_rows);
        EXPECT_EQ(got.comm.total_words, base.comm.total_words);
        EXPECT_EQ(got.comm.total_bits, base.comm.total_bits);
        EXPECT_EQ(got.comm.num_messages, base.comm.num_messages);
        EXPECT_EQ(got.comm.num_rounds, base.comm.num_rounds);
        EXPECT_EQ(got.comm.first_attempt_words, base.comm.first_attempt_words);
        EXPECT_EQ(got.comm.retransmit_words, base.comm.retransmit_words);
        EXPECT_EQ(got.digest, base.digest)
            << "wire transcript differs from the 1-thread run";
      }
    }
  }
}

TEST_F(ParallelDeterminismTest, RepeatedRunsAtFixedThreadCountAreIdentical) {
  for (const ProtocolCase& c : AllProtocolCases()) {
    const RunObservables a = RunOnce(c, true, 8);
    const RunObservables b = RunOnce(c, true, 8);
    SCOPED_TRACE(c.name);
    EXPECT_TRUE(a.sketch == b.sketch);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.comm.total_words, b.comm.total_words);
  }
}

// The Gram-eigen fast shrink is a drop-in replacement for the Jacobi-SVD
// shrink: both must satisfy the FD covariance guarantee. (They are not
// bit-identical to each other — different factorizations — which is why
// the kernel is a process-wide toggle, never schedule-dependent state.)
TEST(FdShrinkKernelToggleTest, BothKernelsMeetTheFdGuarantee) {
  // d = 48 with sketch_size 8 forces the d > 2l Gram regime under kAuto.
  const Matrix a = GenerateLowRankPlusNoise({.rows = 400,
                                             .cols = 48,
                                             .rank = 6,
                                             .decay = 0.6,
                                             .top_singular_value = 20.0,
                                             .noise_stddev = 0.3,
                                             .seed = 9});
  const FdShrinkKernel saved = GetFdShrinkKernel();
  EXPECT_TRUE(FdUsesGramShrink(48, 8));  // kAuto picks Gram in this regime
  for (FdShrinkKernel kernel :
       {FdShrinkKernel::kGramEigen, FdShrinkKernel::kJacobiSvd}) {
    SetFdShrinkKernel(kernel);
    FrequentDirections fd(48, 8);
    for (size_t i = 0; i < a.rows(); ++i) fd.Append(a.Row(i));
    const Matrix sketch = fd.Sketch();
    // The FD invariant both kernels must preserve: the covariance error
    // is bounded by the total spectral mass shrunk away, and the sketch
    // never gains Frobenius mass.
    EXPECT_LE(CovarianceError(a, sketch),
              fd.total_shrinkage() * (1.0 + 1e-9) + 1e-9);
    EXPECT_LE(SquaredFrobeniusNorm(sketch),
              SquaredFrobeniusNorm(a) * (1.0 + 1e-12));
    EXPECT_GT(fd.total_shrinkage(), 0.0);  // the shrink path actually ran
  }
  SetFdShrinkKernel(saved);
}

}  // namespace
}  // namespace distsketch
