// Checkpoint/restart suite: a coordinator that halts (or dies) mid-run
// and resumes from its SketchStore checkpoint must reproduce an
// uninterrupted run — bit-identically when the merge path is
// deterministic (clean halt: the server order is unchanged), and within
// the FD guarantee when a fault reordered the merge (a server lost
// mid-run is retried *after* the survivors on resume).

#include <cstring>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "dist/fault_injection.h"
#include "dist/fd_merge_protocol.h"
#include "dist/svs_protocol.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "store/sketch_store.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

constexpr size_t kServers = 6;

Matrix Workload(uint64_t seed) {
  return GenerateLowRankPlusNoise({.rows = 180,
                                   .cols = 14,
                                   .rank = 4,
                                   .decay = 0.7,
                                   .top_singular_value = 30.0,
                                   .noise_stddev = 0.4,
                                   .seed = seed});
}

Cluster MakeCluster(const Matrix& a, double eps) {
  auto cluster = Cluster::Create(
      PartitionRows(a, kServers, PartitionScheme::kRoundRobin, 7), eps);
  DS_CHECK(cluster.ok());
  return std::move(*cluster);
}

SketchStore OpenFreshStore(const std::string& name) {
  const std::string dir = testing::TempDir() + "/ckpt_" + name;
  std::filesystem::remove_all(dir);
  auto store = SketchStore::Open(dir);
  DS_CHECK(store.ok());
  return std::move(*store);
}

void ExpectMatrixBitsEq(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      uint64_t wa, wb;
      const double da = a(r, c), db = b(r, c);
      std::memcpy(&wa, &da, 8);
      std::memcpy(&wb, &db, 8);
      ASSERT_EQ(wa, wb) << "entry (" << r << ", " << c << ")";
    }
  }
}

class CheckpointRestartTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = ThreadPool::GlobalThreads(); }
  void TearDown() override { ThreadPool::SetGlobalThreads(saved_threads_); }
  size_t saved_threads_ = 1;
};

TEST_F(CheckpointRestartTest, FdMergeHaltResumeBitIdentical) {
  const Matrix a = Workload(21);
  const double eps = 0.4;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    ThreadPool::SetGlobalThreads(threads);

    // Uninterrupted reference run (no checkpointing at all).
    Cluster baseline_cluster = MakeCluster(a, eps);
    FdMergeProtocol baseline({.eps = eps, .k = 3});
    auto expected = baseline.Run(baseline_cluster);
    ASSERT_TRUE(expected.ok());

    // Crash after 3 servers, then restart the coordinator from the
    // stored checkpoint and finish.
    SketchStore store =
        OpenFreshStore("fd_halt_t" + std::to_string(threads));
    FdMergeOptions halted_options{.eps = eps, .k = 3};
    halted_options.checkpoint = {
        .store = &store, .key = "fd", .halt_after_servers = 3};
    Cluster halted_cluster = MakeCluster(a, eps);
    auto halted = FdMergeProtocol(halted_options).Run(halted_cluster);
    ASSERT_TRUE(halted.ok());
    EXPECT_TRUE(halted->halted);
    ASSERT_TRUE(store.Contains("fd"));

    FdMergeOptions resume_options{.eps = eps, .k = 3};
    resume_options.checkpoint = {.store = &store, .key = "fd",
                                 .resume = true};
    Cluster resumed_cluster = MakeCluster(a, eps);
    auto resumed = FdMergeProtocol(resume_options).Run(resumed_cluster);
    ASSERT_TRUE(resumed.ok());
    EXPECT_FALSE(resumed->halted);
    ExpectMatrixBitsEq(resumed->sketch, expected->sketch);
  }
}

TEST_F(CheckpointRestartTest, SvsHaltResumeBitIdentical) {
  const Matrix a = Workload(22);
  const double alpha = 0.3;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    ThreadPool::SetGlobalThreads(threads);

    Cluster baseline_cluster = MakeCluster(a, alpha);
    SvsProtocol baseline({.alpha = alpha, .seed = 99});
    auto expected = baseline.Run(baseline_cluster);
    ASSERT_TRUE(expected.ok());

    SketchStore store =
        OpenFreshStore("svs_halt_t" + std::to_string(threads));
    SvsProtocolOptions halted_options{.alpha = alpha, .seed = 99};
    halted_options.checkpoint = {
        .store = &store, .key = "svs", .halt_after_servers = 3};
    Cluster halted_cluster = MakeCluster(a, alpha);
    auto halted = SvsProtocol(halted_options).Run(halted_cluster);
    ASSERT_TRUE(halted.ok());
    EXPECT_TRUE(halted->halted);
    ASSERT_TRUE(store.Contains("svs"));

    SvsProtocolOptions resume_options{.alpha = alpha, .seed = 99};
    resume_options.checkpoint = {.store = &store, .key = "svs",
                                 .resume = true};
    Cluster resumed_cluster = MakeCluster(a, alpha);
    auto resumed = SvsProtocol(resume_options).Run(resumed_cluster);
    ASSERT_TRUE(resumed.ok());
    EXPECT_FALSE(resumed->halted);
    // The per-server sampling seed depends only on (protocol seed,
    // server index), so the resumed run's remaining draws — and the
    // whole appended sketch — match the uninterrupted run exactly.
    ExpectMatrixBitsEq(resumed->sketch, expected->sketch);
  }
}

TEST_F(CheckpointRestartTest, FdMergeDeathMidRunResumeRecoversGuarantee) {
  const Matrix a = Workload(23);
  const double eps = 0.4;
  const size_t k = 3;

  // No-fault reference run.
  Cluster reference_cluster = MakeCluster(a, eps);
  auto reference = FdMergeProtocol({.eps = eps, .k = k}).Run(reference_cluster);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(IsEpsKSketch(a, reference->sketch, 2.0 * eps, k));

  // Kill server 2 at time zero via the fault injector's death mode; the
  // coordinator checkpoints every fold and finishes degraded.
  SketchStore store = OpenFreshStore("fd_death");
  FdMergeOptions faulty_options{.eps = eps, .k = k};
  faulty_options.checkpoint = {.store = &store, .key = "fd"};
  Cluster faulty_cluster = MakeCluster(a, eps);
  FaultConfig faults;
  faults.per_server[2].die_at_time = 0.0;
  faulty_cluster.InstallFaultPlan(faults);
  auto degraded = FdMergeProtocol(faulty_options).Run(faulty_cluster);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded.degraded());
  EXPECT_EQ(degraded->degraded.lost_servers,
            (std::vector<int>{2}));

  // Restart: faults cleared (the server came back), resume from the
  // store. Only the lost server is reprocessed; it merges after the
  // survivors, so the result carries the full input within the merged-FD
  // guarantee (the merge order differs from the uninterrupted run, so
  // bit-identity is not promised here).
  FdMergeOptions resume_options{.eps = eps, .k = k};
  resume_options.checkpoint = {.store = &store, .key = "fd", .resume = true};
  Cluster resumed_cluster = MakeCluster(a, eps);
  auto recovered = FdMergeProtocol(resume_options).Run(resumed_cluster);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->degraded.degraded());
  EXPECT_TRUE(IsEpsKSketch(a, recovered->sketch, 2.0 * eps, k));
}

TEST_F(CheckpointRestartTest, SvsDeathMidRunResumeRecoversAllRows) {
  const Matrix a = Workload(24);
  const double alpha = 0.3;

  Cluster reference_cluster = MakeCluster(a, alpha);
  auto reference =
      SvsProtocol({.alpha = alpha, .seed = 7}).Run(reference_cluster);
  ASSERT_TRUE(reference.ok());

  SketchStore store = OpenFreshStore("svs_death");
  SvsProtocolOptions faulty_options{.alpha = alpha, .seed = 7};
  faulty_options.checkpoint = {.store = &store, .key = "svs"};
  Cluster faulty_cluster = MakeCluster(a, alpha);
  FaultConfig faults;
  faults.per_server[2].die_at_time = 0.0;
  faulty_cluster.InstallFaultPlan(faults);
  auto degraded = SvsProtocol(faulty_options).Run(faulty_cluster);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded.degraded());

  // Server 2 died before its round-1 mass report, so the broadcast
  // global mass — and the sampling function every surviving server
  // already used — excluded it. A round-1 loss is therefore permanent:
  // the resumed run restores the checkpointed rows and keeps reporting
  // the loss honestly rather than sampling with an inconsistent g.
  SvsProtocolOptions resume_options{.alpha = alpha, .seed = 7};
  resume_options.checkpoint = {.store = &store, .key = "svs",
                               .resume = true};
  Cluster resumed_cluster = MakeCluster(a, alpha);
  auto recovered = SvsProtocol(resume_options).Run(resumed_cluster);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->degraded.degraded())
      << "round-1 losses are permanent: the mass broadcast cannot be "
         "retroactively widened";
  EXPECT_GT(recovered->sketch.rows(), 0u);
}

TEST_F(CheckpointRestartTest, ResumeAgainstWrongProtocolRejected) {
  const Matrix a = Workload(25);
  SketchStore store = OpenFreshStore("wrong_protocol");
  FdMergeOptions fd_options{.eps = 0.4, .k = 3};
  fd_options.checkpoint = {.store = &store, .key = "shared"};
  Cluster fd_cluster = MakeCluster(a, 0.4);
  ASSERT_TRUE(FdMergeProtocol(fd_options).Run(fd_cluster).ok());

  SvsProtocolOptions svs_options{.alpha = 0.3, .seed = 1};
  svs_options.checkpoint = {.store = &store, .key = "shared", .resume = true};
  Cluster svs_cluster = MakeCluster(a, 0.3);
  auto result = SvsProtocol(svs_options).Run(svs_cluster);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("protocol"), std::string::npos)
      << result.status().message();
}

}  // namespace
}  // namespace distsketch
