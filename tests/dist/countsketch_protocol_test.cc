// Distributed CountSketch projection protocol: the coordinator's sum of
// per-server bucket matrices must equal a single compressor run over the
// same (global index, row) pairs — CountSketch is linear, so shard-and-
// sum is exact, not approximate. The approximation lives entirely in the
// projection itself: coverr(A, SA) <= eps * ||A||_F^2 at the swept seeds.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dist/countsketch_protocol.h"
#include "linalg/blas.h"
#include "sketch/countsketch.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

constexpr size_t kServers = 9;

// Mirrors the protocol's global row index scheme (DESIGN.md §14).
uint64_t GlobalRowIndex(size_t server, size_t local_row) {
  return (static_cast<uint64_t>(server) << 32) |
         static_cast<uint64_t>(local_row);
}

size_t BucketsFor(const CountSketchProtocolOptions& options) {
  return static_cast<size_t>(
      std::ceil(options.oversample / (options.eps * options.eps)));
}

Cluster MakeCluster(const std::vector<Matrix>& parts) {
  auto cluster = Cluster::Create(parts, 0.2);
  DS_CHECK(cluster.ok());
  return std::move(*cluster);
}

// The oracle: one compressor absorbing every shard's rows under the
// shard's global indices. By linearity the protocol must reproduce this
// bit for bit — same hashes, same adds, only the association differs,
// and the test data has +-1 entries so bucket sums are exact integers.
Matrix Oracle(const std::vector<Matrix>& parts,
              const CountSketchProtocolOptions& options) {
  CountSketchCompressor compressor(BucketsFor(options), parts[0].cols(),
                                   options.seed);
  for (size_t i = 0; i < parts.size(); ++i) {
    for (size_t r = 0; r < parts[i].rows(); ++r) {
      compressor.Absorb(GlobalRowIndex(i, r), parts[i].Row(r));
    }
  }
  return compressor.ExportState().compressed;
}

TEST(CountSketchProtocolTest, ShardAndSumEqualsOneCompressorExactly) {
  const Matrix a = GenerateSignMatrix(117, 8, /*seed=*/13);
  const auto parts = PartitionRows(a, kServers, PartitionScheme::kRoundRobin);
  CountSketchProtocolOptions options{.eps = 0.35, .oversample = 2.0,
                                     .seed = 77};
  for (const MergeTopologyOptions& topo :
       {MergeTopologyOptions::Star(), MergeTopologyOptions::Tree(3)}) {
    options.topology = topo;
    Cluster cluster = MakeCluster(parts);
    CountSketchProtocol protocol(options);
    auto result = protocol.Run(cluster);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->sketch == Oracle(parts, options));
    EXPECT_EQ(result->sketch_rows, BucketsFor(options));
  }
}

TEST(CountSketchProtocolTest, MeetsTheCoverrBoundAtSweptSeeds) {
  const Matrix a = GenerateLowRankPlusNoise({.rows = 300,
                                             .cols = 16,
                                             .rank = 5,
                                             .decay = 0.5,
                                             .top_singular_value = 20.0,
                                             .noise_stddev = 0.3,
                                             .seed = 8});
  const double eps = 0.3;
  const double budget = eps * SquaredFrobeniusNorm(a);
  const auto parts = PartitionRows(a, kServers, PartitionScheme::kContiguous);
  // coverr <= eps ||A||_F^2 holds with constant probability; sweeping a
  // few fixed seeds keeps the test deterministic while showing the bound
  // isn't a one-seed accident.
  for (const uint64_t seed : {1ull, 29ull, 12345ull}) {
    Cluster cluster = MakeCluster(parts);
    CountSketchProtocol protocol({.eps = eps, .oversample = 4.0,
                                  .seed = seed,
                                  .topology = MergeTopologyOptions::Tree(4)});
    auto result = protocol.Run(cluster);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(CovarianceError(a, result->sketch), budget) << "seed=" << seed;
  }
}

TEST(CountSketchProtocolTest, SparseAndDenseInputsAgreeBitForBit) {
  const Matrix a = GenerateSparse(
      {.rows = 180, .cols = 24, .density = 0.05, .seed = 17});
  const auto parts = PartitionRows(a, kServers, PartitionScheme::kContiguous);
  const CountSketchProtocolOptions options{
      .eps = 0.4, .oversample = 2.0, .seed = 5,
      .topology = MergeTopologyOptions::Tree(3)};

  Cluster dense = MakeCluster(parts);
  auto dense_run = CountSketchProtocol(options).Run(dense);
  ASSERT_TRUE(dense_run.ok());

  auto sparse_cluster = Cluster::CreateSparse(parts, 0.2);
  ASSERT_TRUE(sparse_cluster.ok());
  auto sparse_run = CountSketchProtocol(options).Run(*sparse_cluster);
  ASSERT_TRUE(sparse_run.ok());

  // AbsorbSparse touches exactly the entries Absorb would change by a
  // non-zero amount: the O(nnz) route is bit-identical, not approximate.
  EXPECT_TRUE(sparse_run->sketch == dense_run->sketch);
}

TEST(CountSketchProtocolTest, SeedChangesTheHashFamily) {
  const Matrix a = GenerateSignMatrix(60, 6, /*seed=*/2);
  const auto parts = PartitionRows(a, kServers, PartitionScheme::kRoundRobin);
  auto run = [&](uint64_t seed) {
    Cluster cluster = MakeCluster(parts);
    CountSketchProtocol protocol({.eps = 0.4, .oversample = 2.0,
                                  .seed = seed});
    auto result = protocol.Run(cluster);
    DS_CHECK(result.ok());
    return std::move(result->sketch);
  };
  const Matrix first = run(11);
  EXPECT_TRUE(run(11) == first) << "same seed must be reproducible";
  EXPECT_FALSE(run(12) == first) << "different seed, different buckets";
}

TEST(CountSketchProtocolTest, InvalidOptionsAreRejected) {
  const Matrix a = GenerateSignMatrix(20, 4, /*seed=*/3);
  const auto parts = PartitionRows(a, 4, PartitionScheme::kRoundRobin);
  for (const CountSketchProtocolOptions& options :
       {CountSketchProtocolOptions{.eps = 0.0},
        CountSketchProtocolOptions{.eps = -0.1},
        CountSketchProtocolOptions{.eps = 0.3, .oversample = 0.0}}) {
    Cluster cluster = MakeCluster(parts);
    auto result = CountSketchProtocol(options).Run(cluster);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace distsketch
