#include "dist/comm_log.h"

#include <gtest/gtest.h>

namespace distsketch {
namespace {

TEST(CommLogTest, EmptyLogHasZeroStats) {
  CommLog log(32);
  const CommStats s = log.Stats();
  EXPECT_EQ(s.total_words, 0u);
  EXPECT_EQ(s.total_bits, 0u);
  EXPECT_EQ(s.num_messages, 0u);
  EXPECT_EQ(s.num_rounds, 0);
}

TEST(CommLogTest, RecordsWordsAndDefaultBits) {
  CommLog log(40);
  log.BeginRound();
  log.Record(0, kCoordinator, "sketch", 100);
  const CommStats s = log.Stats();
  EXPECT_EQ(s.total_words, 100u);
  EXPECT_EQ(s.total_bits, 4000u);
  EXPECT_EQ(s.num_messages, 1u);
  EXPECT_EQ(s.num_rounds, 1);
}

TEST(CommLogTest, ExplicitBitsOverrideDefault) {
  CommLog log(40);
  log.BeginRound();
  log.Record(1, kCoordinator, "quantized", 10, 123);
  EXPECT_EQ(log.Stats().total_bits, 123u);
  EXPECT_EQ(log.Stats().total_words, 10u);
}

TEST(CommLogTest, BroadcastIsSPointToPointMessages) {
  CommLog log(32);
  log.BeginRound();
  log.RecordBroadcast(5, "params", 3);
  const CommStats s = log.Stats();
  EXPECT_EQ(s.num_messages, 5u);
  EXPECT_EQ(s.total_words, 15u);
  for (const auto& m : log.messages()) {
    EXPECT_EQ(m.from, kCoordinator);
    EXPECT_EQ(m.tag, "params");
  }
}

TEST(CommLogTest, RoundsIncrementAndStamp) {
  CommLog log(32);
  EXPECT_EQ(log.BeginRound(), 1);
  log.Record(0, kCoordinator, "a", 1);
  EXPECT_EQ(log.BeginRound(), 2);
  log.Record(1, kCoordinator, "b", 1);
  ASSERT_EQ(log.messages().size(), 2u);
  EXPECT_EQ(log.messages()[0].round, 1);
  EXPECT_EQ(log.messages()[1].round, 2);
  EXPECT_EQ(log.Stats().num_rounds, 2);
}

TEST(CommLogTest, WordsSentByEndpoint) {
  CommLog log(32);
  log.BeginRound();
  log.Record(0, kCoordinator, "x", 10);
  log.Record(1, kCoordinator, "y", 20);
  log.Record(kCoordinator, 0, "z", 5);
  EXPECT_EQ(log.WordsSentBy(0), 10u);
  EXPECT_EQ(log.WordsSentBy(1), 20u);
  EXPECT_EQ(log.WordsSentBy(kCoordinator), 5u);
}

}  // namespace
}  // namespace distsketch
