#include "dist/cluster.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

TEST(ClusterTest, CreateValidation) {
  EXPECT_FALSE(Cluster::Create({}, 0.1).ok());
  // All-empty partitions.
  std::vector<Matrix> empties(3);
  EXPECT_FALSE(Cluster::Create(std::move(empties), 0.1).ok());
  // Mismatched widths.
  std::vector<Matrix> mismatched;
  mismatched.push_back(Matrix(2, 3));
  mismatched.push_back(Matrix(2, 4));
  EXPECT_FALSE(Cluster::Create(std::move(mismatched), 0.1).ok());
  // Bad eps.
  std::vector<Matrix> ok_parts;
  ok_parts.push_back(Matrix(2, 3));
  EXPECT_FALSE(Cluster::Create(std::move(ok_parts), 0.0).ok());
}

TEST(ClusterTest, BasicAccessors) {
  const Matrix a = GenerateGaussian(20, 5, 1.0, 1);
  auto cluster = Cluster::Create(
      PartitionRows(a, 4, PartitionScheme::kContiguous), 0.1);
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ(cluster->num_servers(), 4u);
  EXPECT_EQ(cluster->dim(), 5u);
  EXPECT_EQ(cluster->total_rows(), 20u);
  EXPECT_EQ(cluster->server(0).num_rows(), 5u);
  EXPECT_EQ(cluster->server(2).id(), 2);
}

TEST(ClusterTest, EmptyServerToleratedIfAnyNonEmpty) {
  std::vector<Matrix> parts;
  parts.push_back(GenerateGaussian(4, 3, 1.0, 2));
  parts.push_back(Matrix());  // empty server
  auto cluster = Cluster::Create(std::move(parts), 0.1);
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ(cluster->server(1).num_rows(), 0u);
  EXPECT_EQ(cluster->server(1).local_rows().cols(), 3u);
}

TEST(ClusterTest, AssembleGroundTruthConcatenates) {
  const Matrix a = GenerateGaussian(12, 4, 1.0, 3);
  auto cluster = Cluster::Create(
      PartitionRows(a, 3, PartitionScheme::kContiguous), 0.1);
  ASSERT_TRUE(cluster.ok());
  EXPECT_TRUE(cluster->AssembleGroundTruth() == a);
}

TEST(ClusterTest, ResetLogClearsStats) {
  const Matrix a = GenerateGaussian(6, 3, 1.0, 4);
  auto cluster =
      Cluster::Create(PartitionRows(a, 2, PartitionScheme::kContiguous),
                      0.1);
  ASSERT_TRUE(cluster.ok());
  cluster->log().BeginRound();
  cluster->log().Record(0, kCoordinator, "x", 7);
  EXPECT_EQ(cluster->log().Stats().total_words, 7u);
  cluster->ResetLog();
  EXPECT_EQ(cluster->log().Stats().total_words, 0u);
  EXPECT_EQ(cluster->log().Stats().num_rounds, 0);
}

TEST(ClusterTest, StreamingAccessIsSinglePass) {
  const Matrix a = GenerateGaussian(8, 3, 1.0, 5);
  auto cluster = Cluster::Create(
      PartitionRows(a, 2, PartitionScheme::kRoundRobin), 0.1);
  ASSERT_TRUE(cluster.ok());
  RowStream stream = cluster->server(0).OpenStream();
  size_t n = 0;
  while (stream.HasNext()) {
    stream.Next();
    ++n;
  }
  EXPECT_EQ(n, 4u);
}

TEST(ClusterTest, CostModelWordSizeReflectsInstance) {
  const Matrix a = GenerateGaussian(1000, 50, 1.0, 6);
  auto cluster = Cluster::Create(
      PartitionRows(a, 4, PartitionScheme::kContiguous), 0.01);
  ASSERT_TRUE(cluster.ok());
  EXPECT_GE(cluster->cost_model().bits_per_word(), 32u);
}

}  // namespace
}  // namespace distsketch
