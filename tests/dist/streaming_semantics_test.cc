// Semantics of the distributed streaming model (§1): a single pass over
// each local stream, bounded working space, determinism where the paper
// claims it, and batch/stream equivalence of the sketches.

#include <gtest/gtest.h>

#include "dist/adaptive_sketch_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "dist/row_sampling_protocol.h"
#include "dist/svs_protocol.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "sketch/frequent_directions.h"
#include "workload/generators.h"
#include "workload/partition.h"
#include "workload/row_stream.h"

namespace distsketch {
namespace {

Cluster MakeCluster(const Matrix& a, size_t s, double eps) {
  auto cluster = Cluster::Create(
      PartitionRows(a, s, PartitionScheme::kRoundRobin), eps);
  DS_CHECK(cluster.ok());
  return std::move(*cluster);
}

TEST(StreamingSemanticsTest, FdIsOrderDependentButBothOrdersValid) {
  // FD is a streaming algorithm: different row orders give different
  // sketches, but both satisfy the guarantee (the paper's bounds are
  // order-free).
  const Matrix a = GenerateGaussian(120, 10, 1.0, 1);
  Matrix reversed(0, 10);
  for (size_t i = a.rows(); i-- > 0;) reversed.AppendRow(a.Row(i));
  FrequentDirections forward(10, 5), backward(10, 5);
  forward.AppendRows(a);
  backward.AppendRows(reversed);
  const double budget = OptimalTailEnergy(a, 2) / 3.0;  // l-k = 3
  EXPECT_LE(CovarianceError(a, forward.Sketch()), budget * (1 + 1e-9));
  EXPECT_LE(CovarianceError(a, backward.Sketch()), budget * (1 + 1e-9));
}

TEST(StreamingSemanticsTest, FdBatchEqualsStreamed) {
  // Feeding rows one by one equals feeding them as blocks: the sketch is
  // a pure function of the row sequence.
  const Matrix a = GenerateGaussian(90, 8, 1.0, 2);
  FrequentDirections streamed(8, 4), blocked(8, 4);
  for (size_t i = 0; i < a.rows(); ++i) streamed.Append(a.Row(i));
  blocked.AppendRows(a.RowRange(0, 30));
  blocked.AppendRows(a.RowRange(30, 90));
  EXPECT_TRUE(streamed.Sketch() == blocked.Sketch());
}

TEST(StreamingSemanticsTest, DeterministicProtocolIsRunToRunIdentical) {
  const Matrix a = GenerateGaussian(100, 8, 1.0, 3);
  Cluster cluster = MakeCluster(a, 4, 0.25);
  FdMergeProtocol protocol({.eps = 0.25, .k = 2});
  auto r1 = protocol.Run(cluster);
  auto r2 = protocol.Run(cluster);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r1->sketch == r2->sketch);
  EXPECT_EQ(r1->comm.total_words, r2->comm.total_words);
}

TEST(StreamingSemanticsTest, RandomizedProtocolsSeedDeterministic) {
  const Matrix a = GenerateGaussian(100, 8, 1.0, 4);
  Cluster cluster = MakeCluster(a, 4, 0.25);
  for (int run = 0; run < 2; ++run) {
    SvsProtocol svs({.alpha = 0.1, .seed = 9});
    AdaptiveSketchProtocol adaptive({.eps = 0.25, .k = 2, .seed = 9});
    RowSamplingProtocol sampling({.eps = 0.4, .seed = 9});
    static Matrix svs_first, adaptive_first, sampling_first;
    auto s1 = svs.Run(cluster);
    auto s2 = adaptive.Run(cluster);
    auto s3 = sampling.Run(cluster);
    ASSERT_TRUE(s1.ok());
    ASSERT_TRUE(s2.ok());
    ASSERT_TRUE(s3.ok());
    if (run == 0) {
      svs_first = s1->sketch;
      adaptive_first = s2->sketch;
      sampling_first = s3->sketch;
    } else {
      EXPECT_TRUE(s1->sketch == svs_first);
      EXPECT_TRUE(s2->sketch == adaptive_first);
      EXPECT_TRUE(s3->sketch == sampling_first);
    }
  }
}

TEST(StreamingSemanticsTest, DifferentSeedsGiveDifferentSketches) {
  // The linear sampling function keeps probabilities strictly inside
  // (0,1) over a wide band (the quadratic one clamps to {0,1} outside a
  // narrow band at small s, which would make SVS deterministic).
  const Matrix a = GenerateZipfSpectrum(
      {.rows = 100, .cols = 16, .alpha = 1.2, .seed = 5});
  Cluster cluster = MakeCluster(a, 4, 0.25);
  SvsProtocol p1({.alpha = 0.2,
                  .kind = SamplingFunctionKind::kLinear,
                  .seed = 1});
  SvsProtocol p2({.alpha = 0.2,
                  .kind = SamplingFunctionKind::kLinear,
                  .seed = 2});
  auto r1 = p1.Run(cluster);
  auto r2 = p2.Run(cluster);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r1->sketch == r2->sketch);
}

TEST(StreamingSemanticsTest, FdWorkingSpaceIsBounded) {
  // The buffer never exceeds 2*l rows at any point in the stream — the
  // O(l d) working-space claim of Theorem 1.
  FrequentDirections fd(16, 6);
  const Matrix a = GenerateGaussian(500, 16, 1.0, 6);
  for (size_t i = 0; i < a.rows(); ++i) {
    fd.Append(a.Row(i));
    EXPECT_LT(fd.buffer().rows(), 2u * 6u);
  }
}

TEST(StreamingSemanticsTest, RowStreamCannotBeReplayed) {
  const Matrix a = GenerateGaussian(10, 4, 1.0, 7);
  RowStream stream(a);
  while (stream.HasNext()) stream.Next();
  EXPECT_FALSE(stream.HasNext());
  EXPECT_EQ(stream.consumed(), stream.total());
}

TEST(StreamingSemanticsTest, ProtocolRerunDoesNotLeakLogState) {
  // Run() resets the cluster log: message counts never accumulate across
  // runs.
  const Matrix a = GenerateGaussian(80, 6, 1.0, 8);
  Cluster cluster = MakeCluster(a, 4, 0.3);
  FdMergeProtocol protocol({.eps = 0.3, .k = 2});
  auto r1 = protocol.Run(cluster);
  auto r2 = protocol.Run(cluster);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->comm.num_messages, r2->comm.num_messages);
  EXPECT_EQ(r1->comm.num_rounds, r2->comm.num_rounds);
}

}  // namespace
}  // namespace distsketch
