// Acceptance tests for the real wire layer: every protocol transfer
// carries encoded bytes, the measured frame size is a pure function of
// the analytic word/bit count, the no-fault transcript is reproducible,
// and byte-level truncation/corruption is detected by the receiver's
// decode/checksum and recovered via NAK + retransmit.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/adaptive_sketch_protocol.h"
#include "dist/exact_gram_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "dist/low_rank_exact_protocol.h"
#include "dist/row_sampling_protocol.h"
#include "dist/svs_protocol.h"
#include "wire/frame.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

Cluster MakeCluster(const Matrix& a, size_t s, double eps) {
  auto cluster =
      Cluster::Create(PartitionRows(a, s, PartitionScheme::kRoundRobin, 7),
                      eps);
  DS_CHECK(cluster.ok());
  return std::move(*cluster);
}

Matrix DefaultWorkload(uint64_t seed = 1) {
  return GenerateLowRankPlusNoise({.rows = 160,
                                   .cols = 16,
                                   .rank = 4,
                                   .decay = 0.7,
                                   .top_singular_value = 40.0,
                                   .noise_stddev = 0.4,
                                   .seed = seed});
}

// Size of a dense-encoded frame: header + tag + (encoding byte +
// "DSMT" shape header + 8 bytes per word). Dense payloads meter one word
// per encoded double, so the measured byte size is an exact function of
// the analytic word count.
uint64_t DenseFrameBytes(const std::string& tag, uint64_t words) {
  return wire::kFrameHeaderBytes + tag.size() + 1 + 20 + 8 * words;
}

// Size of a quantized-encoded frame: header + tag + (encoding byte +
// "DSQM" header + the exact bitstream rounded up to bytes).
uint64_t QuantFrameBytes(const std::string& tag, uint64_t bits) {
  return wire::kFrameHeaderBytes + tag.size() + 1 + 36 + (bits + 7) / 8;
}

// Checks every record of a no-fault run: real bytes crossed the wire and
// their measured size reconstructs exactly from the metered words/bits.
void ExpectMeasuredMatchesAnalytic(const CommLog& log) {
  ASSERT_GT(log.messages().size(), 0u);
  for (const MessageRecord& rec : log.messages()) {
    SCOPED_TRACE(rec.tag);
    EXPECT_EQ(rec.attempt, 0);
    EXPECT_FALSE(rec.truncated);
    EXPECT_FALSE(rec.corrupted);
    EXPECT_GT(rec.wire_bytes, 0u);
    const bool quantized = rec.tag.ends_with("_q");
    if (quantized) {
      EXPECT_EQ(rec.wire_bytes, QuantFrameBytes(rec.tag, rec.bits));
      EXPECT_EQ(rec.words, (rec.bits + log.bits_per_word() - 1) /
                               log.bits_per_word());
    } else {
      EXPECT_EQ(rec.wire_bytes, DenseFrameBytes(rec.tag, rec.words));
      EXPECT_EQ(rec.bits, rec.words * log.bits_per_word());
    }
  }
  const CommStats stats = log.Stats();
  EXPECT_EQ(stats.retransmit_words, 0u);
  EXPECT_EQ(stats.first_attempt_words, stats.total_words);
  // A fault-free wire never sends control frames.
  EXPECT_EQ(stats.num_control_messages, 0u);
  EXPECT_EQ(stats.control_wire_bytes, 0u);
}

TEST(WireEquivalenceTest, ExactGramMeasuredWordsMatchClosedForm) {
  const Matrix a = DefaultWorkload();
  Cluster cluster = MakeCluster(a, 4, 0.1);
  auto result = ExactGramProtocol().Run(cluster);
  ASSERT_TRUE(result.ok());
  // The packed upper triangle meters exactly the analytic s * d(d+1)/2.
  EXPECT_EQ(result->comm.total_words, 4u * (16u * 17u / 2u));
  ExpectMeasuredMatchesAnalytic(cluster.log());
}

TEST(WireEquivalenceTest, FdMergeDenseAndQuantized) {
  const Matrix a = DefaultWorkload(2);
  Cluster cluster = MakeCluster(a, 4, 0.4);
  auto dense = FdMergeProtocol({.eps = 0.4, .k = 3}).Run(cluster);
  ASSERT_TRUE(dense.ok());
  ExpectMeasuredMatchesAnalytic(cluster.log());

  auto quant =
      FdMergeProtocol({.eps = 0.4, .k = 3, .quantize = true}).Run(cluster);
  ASSERT_TRUE(quant.ok());
  ExpectMeasuredMatchesAnalytic(cluster.log());
  // Quantized payloads measurably shrink the wire vs dense encoding.
  EXPECT_LT(quant->comm.total_wire_bytes, dense->comm.total_wire_bytes);
  EXPECT_LT(quant->comm.total_bits, dense->comm.total_bits);
}

TEST(WireEquivalenceTest, SvsAdaptiveRowSamplingLowRank) {
  const Matrix a = DefaultWorkload(3);
  Cluster cluster = MakeCluster(a, 4, 0.3);
  {
    auto r = SvsProtocol({.alpha = 1.0, .delta = 0.1, .seed = 5})
                 .Run(cluster);
    ASSERT_TRUE(r.ok());
    ExpectMeasuredMatchesAnalytic(cluster.log());
  }
  {
    auto r = AdaptiveSketchProtocol({.eps = 0.4, .k = 3, .seed = 5})
                 .Run(cluster);
    ASSERT_TRUE(r.ok());
    ExpectMeasuredMatchesAnalytic(cluster.log());
  }
  {
    auto r = RowSamplingProtocol({.eps = 0.5, .seed = 5}).Run(cluster);
    ASSERT_TRUE(r.ok());
    ExpectMeasuredMatchesAnalytic(cluster.log());
  }
  {
    // The exact low-rank protocol needs local rank <= 2k: use a
    // noiseless rank-4 input on its own cluster.
    const Matrix low = GenerateLowRankPlusNoise({.rows = 160,
                                                 .cols = 16,
                                                 .rank = 4,
                                                 .decay = 0.7,
                                                 .top_singular_value = 40.0,
                                                 .noise_stddev = 0.0,
                                                 .seed = 8});
    Cluster lr_cluster = MakeCluster(low, 4, 0.3);
    auto r = LowRankExactProtocol({.k = 4}).Run(lr_cluster);
    ASSERT_TRUE(r.ok()) << r.status().message();
    ExpectMeasuredMatchesAnalytic(lr_cluster.log());
  }
}

TEST(WireEquivalenceTest, NoFaultTranscriptIsReproducible) {
  const Matrix a = DefaultWorkload(4);
  Cluster c1 = MakeCluster(a, 4, 0.4);
  Cluster c2 = MakeCluster(a, 4, 0.4);
  Cluster c3 = MakeCluster(a, 4, 0.4);
  // c2 runs with an installed-but-inert fault plan; c3 repeats c1.
  c2.InstallFaultPlan(FaultConfig{});
  FdMergeProtocol protocol({.eps = 0.4, .k = 3});
  auto r1 = protocol.Run(c1);
  auto r2 = protocol.Run(c2);
  auto r3 = protocol.Run(c3);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());
  // Identical runs digest identically (full transcript, times included).
  EXPECT_EQ(TranscriptDigest(c1.log(), nullptr),
            TranscriptDigest(c3.log(), nullptr));
  // The inert plan reproduces every metered quantity of the ideal
  // network; only the virtual clock differs (the injector charges
  // latency, the ideal wire charges nothing).
  ASSERT_EQ(c1.log().messages().size(), c2.log().messages().size());
  for (size_t i = 0; i < c1.log().messages().size(); ++i) {
    const MessageRecord& m1 = c1.log().messages()[i];
    const MessageRecord& m2 = c2.log().messages()[i];
    EXPECT_EQ(m1.from, m2.from);
    EXPECT_EQ(m1.to, m2.to);
    EXPECT_EQ(m1.tag, m2.tag);
    EXPECT_EQ(m1.words, m2.words);
    EXPECT_EQ(m1.bits, m2.bits);
    EXPECT_EQ(m1.wire_bytes, m2.wire_bytes);
    EXPECT_EQ(m1.round, m2.round);
    EXPECT_EQ(m1.attempt, m2.attempt);
    EXPECT_FALSE(m2.truncated);
    EXPECT_FALSE(m2.corrupted);
  }
  EXPECT_EQ(r1->comm.total_words, r2->comm.total_words);
  EXPECT_EQ(r1->comm.total_bits, r2->comm.total_bits);
  EXPECT_EQ(r1->comm.total_wire_bytes, r2->comm.total_wire_bytes);
  ASSERT_EQ(r1->sketch.size(), r2->sketch.size());
  EXPECT_EQ(std::memcmp(r1->sketch.data(), r2->sketch.data(),
                        r1->sketch.size() * sizeof(double)),
            0);
}

TEST(WireChaosTest, TruncationIsDetectedAndRecoveredByRetransmit) {
  const Matrix a = DefaultWorkload(5);
  Cluster ideal = MakeCluster(a, 4, 0.4);
  FdMergeProtocol protocol({.eps = 0.4, .k = 3});
  auto clean = protocol.Run(ideal);
  ASSERT_TRUE(clean.ok());

  // Truncation only strikes multi-word payloads, so a given seed may
  // draw none; scan a few seeds for a schedule with truncations and no
  // permanently lost server (all deterministic per seed).
  Cluster faulty = MakeCluster(a, 4, 0.4);
  StatusOr<SketchProtocolResult> result = Status::Internal("unset");
  size_t truncated = 0;
  for (uint64_t seed = 1; seed <= 32 && truncated == 0; ++seed) {
    FaultConfig config;
    config.default_profile.truncate_prob = 0.3;
    config.seed = seed;
    faulty.InstallFaultPlan(config);
    result = protocol.Run(faulty);
    ASSERT_TRUE(result.ok());
    if (!faulty.faults()->lost_servers().empty()) continue;
    for (const MessageRecord& rec : faulty.log().messages()) {
      if (rec.truncated) ++truncated;
    }
  }
  ASSERT_GT(truncated, 0u) << "no seed in [1,32] produced a truncation";

  // Every truncated attempt metered a strict byte prefix of its frame,
  // and a later attempt of the same logical message went through.
  size_t recovered = 0;
  for (const MessageRecord& rec : faulty.log().messages()) {
    if (!rec.truncated) continue;
    EXPECT_GT(rec.wire_bytes, 0u);
    EXPECT_LT(rec.wire_bytes, DenseFrameBytes(rec.tag, rec.words));
    for (const MessageRecord& later : faulty.log().messages()) {
      if (later.from == rec.from && later.tag == rec.tag &&
          later.attempt > rec.attempt && !later.truncated &&
          !later.corrupted) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_EQ(recovered, truncated);

  // The injector saw the truncations and retry accounting is exact.
  size_t truncation_events = 0;
  for (const FaultEvent& ev : faulty.faults()->events()) {
    if (ev.kind == FaultEventKind::kTruncated) ++truncation_events;
  }
  EXPECT_EQ(truncation_events, truncated);
  const CommStats stats = faulty.log().Stats();
  EXPECT_EQ(stats.first_attempt_words + stats.retransmit_words,
            stats.total_words);
  EXPECT_GT(stats.retransmit_words, 0u);

  // No server was lost at this fault rate, so the retransmitted payloads
  // decoded identically and the merged sketch matches the clean run.
  ASSERT_TRUE(faulty.faults()->lost_servers().empty());
  ASSERT_EQ(result->sketch.size(), clean->sketch.size());
  EXPECT_EQ(std::memcmp(result->sketch.data(), clean->sketch.data(),
                        clean->sketch.size() * sizeof(double)),
            0);
}

TEST(WireChaosTest, CorruptionIsDetectedByChecksumAndRecovered) {
  const Matrix a = DefaultWorkload(6);
  Cluster ideal = MakeCluster(a, 4, 0.4);
  FdMergeProtocol protocol({.eps = 0.4, .k = 3});
  auto clean = protocol.Run(ideal);
  ASSERT_TRUE(clean.ok());

  Cluster faulty = MakeCluster(a, 4, 0.4);
  FaultConfig config;
  config.default_profile.corrupt_prob = 0.3;
  config.seed = 3;
  faulty.InstallFaultPlan(config);
  auto result = protocol.Run(faulty);
  ASSERT_TRUE(result.ok());

  // A corrupted frame crosses the wire in full (the flip is detected by
  // the receiver's checksum, not by a short read).
  size_t corrupted = 0;
  for (const MessageRecord& rec : faulty.log().messages()) {
    if (!rec.corrupted) continue;
    ++corrupted;
    EXPECT_FALSE(rec.truncated);
    EXPECT_EQ(rec.wire_bytes, DenseFrameBytes(rec.tag, rec.words));
  }
  ASSERT_GT(corrupted, 0u) << "seed produced no corruptions; pick another";
  size_t corruption_events = 0;
  for (const FaultEvent& ev : faulty.faults()->events()) {
    if (ev.kind == FaultEventKind::kCorrupted) ++corruption_events;
  }
  EXPECT_EQ(corruption_events, corrupted);

  ASSERT_TRUE(faulty.faults()->lost_servers().empty());
  ASSERT_EQ(result->sketch.size(), clean->sketch.size());
  EXPECT_EQ(std::memcmp(result->sketch.data(), clean->sketch.data(),
                        clean->sketch.size() * sizeof(double)),
            0);
}

TEST(WireChaosTest, AlwaysCorruptChannelGivesUpAfterRetries) {
  CommLog log(32);
  FaultConfig config;
  config.per_server[0].corrupt_prob = 1.0;
  config.max_retries = 2;
  config.seed = 9;
  FaultInjector injector(config);
  Matrix m(2, 3);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = 1.0 + i;
  SendOutcome out =
      injector.Send(log, 0, kCoordinator, wire::DenseMessage("payload", m));
  EXPECT_FALSE(out.delivered);
  EXPECT_TRUE(out.server_lost);
  EXPECT_EQ(out.attempts, 3);
  EXPECT_TRUE(out.payload.empty());
  // Every rejected attempt is a corrupted payload record followed by the
  // receiver's NAK control frame back to the sender.
  size_t payload_records = 0;
  size_t nak_records = 0;
  uint64_t nak_bytes = 0;
  for (const MessageRecord& rec : log.messages()) {
    if (rec.control) {
      ++nak_records;
      nak_bytes += rec.wire_bytes;
      EXPECT_EQ(rec.words, 0u);
      EXPECT_EQ(rec.from, kCoordinator);  // receiver -> sender
      EXPECT_EQ(rec.to, 0);
    } else {
      ++payload_records;
      EXPECT_TRUE(rec.corrupted);
    }
  }
  EXPECT_EQ(payload_records, 3u);
  EXPECT_EQ(nak_records, 3u);
  EXPECT_EQ(out.control_bytes, nak_bytes);
  // Each NAK is a real encoded empty-payload frame: 40-byte header plus
  // the 3-byte "nak" tag.
  EXPECT_EQ(nak_bytes, 3u * (wire::kFrameHeaderBytes + 3u));
  // Control bytes stay out of the payload stats but are metered: the
  // measured grand total is the analytic payload bytes plus control.
  const CommStats stats = log.Stats();
  EXPECT_EQ(stats.num_messages, 3u);
  EXPECT_EQ(stats.num_control_messages, 3u);
  EXPECT_EQ(stats.control_wire_bytes, nak_bytes);
  EXPECT_EQ(stats.total_wire_bytes, out.wire_bytes);
  uint64_t grand_total = 0;
  for (const MessageRecord& rec : log.messages()) {
    grand_total += rec.wire_bytes;
  }
  EXPECT_EQ(grand_total, stats.total_wire_bytes + stats.control_wire_bytes);
}

TEST(WireEquivalenceTest, IdealWireDeliversDecodablePayload) {
  CommLog log(32);
  Matrix m(3, 4);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = 0.5 * i - 2.0;
  const wire::Message msg = wire::DenseMessage("roundtrip", m);
  SendOutcome out = SendOverIdealWire(log, 1, kCoordinator, msg);
  ASSERT_TRUE(out.delivered);
  EXPECT_EQ(out.wire_bytes, DenseFrameBytes("roundtrip", m.size()));
  auto decoded = wire::DecodeMessagePayload(out.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::memcmp(decoded->matrix.data(), m.data(),
                        m.size() * sizeof(double)),
            0);
}

}  // namespace
}  // namespace distsketch
