#include "dist/low_rank_exact_protocol.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

Cluster MakeCluster(const Matrix& a, size_t s) {
  auto cluster = Cluster::Create(
      PartitionRows(a, s, PartitionScheme::kRoundRobin), 0.1);
  DS_CHECK(cluster.ok());
  return std::move(*cluster);
}

TEST(LowRankExactTest, RejectsZeroK) {
  const Matrix a = GenerateGaussian(10, 4, 1.0, 1);
  Cluster cluster = MakeCluster(a, 2);
  LowRankExactProtocol protocol({.k = 0});
  EXPECT_FALSE(protocol.Run(cluster).ok());
}

TEST(LowRankExactTest, ExactForLowRankInput) {
  // rank(A) = 3 <= 2k with k = 2.
  const Matrix a = GenerateLowRankPlusNoise(
      {.rows = 80, .cols = 12, .rank = 3, .noise_stddev = 0.0, .seed = 2});
  Cluster cluster = MakeCluster(a, 4);
  LowRankExactProtocol protocol({.k = 2});
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(CovarianceError(a, result->sketch), 0.0,
              1e-5 * SquaredFrobeniusNorm(a));
  // Sketch has rank(A) rows.
  EXPECT_EQ(result->sketch_rows, 3u);
}

TEST(LowRankExactTest, CostIsOskd) {
  const size_t k = 3;
  const size_t d = 16;
  const size_t s = 5;
  const Matrix a = GenerateLowRankPlusNoise(
      {.rows = 100, .cols = d, .rank = 2 * k, .noise_stddev = 0.0,
       .seed = 3});
  Cluster cluster = MakeCluster(a, s);
  LowRankExactProtocol protocol({.k = k});
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());
  // Per server at most 2k*d + (2k)^2 words.
  EXPECT_LE(result->comm.total_words, s * (2 * k * d + 4 * k * k));
  EXPECT_EQ(result->comm.num_rounds, 1);
}

TEST(LowRankExactTest, FailsPreconditionWhenRankTooHigh) {
  // Full-rank Gaussian input with 2k < d: some server sees rank > 2k.
  const Matrix a = GenerateGaussian(60, 10, 1.0, 4);
  Cluster cluster = MakeCluster(a, 2);
  LowRankExactProtocol protocol({.k = 2});
  auto result = protocol.Run(cluster);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LowRankExactTest, HandlesEmptyServers) {
  const Matrix a = GenerateLowRankPlusNoise(
      {.rows = 10, .cols = 8, .rank = 2, .noise_stddev = 0.0, .seed = 5});
  // 12 servers, 10 rows: some servers are empty.
  Cluster cluster = MakeCluster(a, 12);
  LowRankExactProtocol protocol({.k = 1});
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(CovarianceError(a, result->sketch), 0.0,
              1e-6 * SquaredFrobeniusNorm(a));
}

TEST(LowRankExactTest, IntegerInputStaysExact) {
  // The paper's input model: small integer entries. Build a rank-2
  // integer matrix by repeating two integer rows with integer multiples.
  Matrix a(0, 6);
  const double r1[] = {1, 2, 0, -1, 3, 0};
  const double r2[] = {0, 1, 1, 2, -2, 4};
  for (int i = 0; i < 20; ++i) {
    std::vector<double> row(6);
    for (int j = 0; j < 6; ++j) {
      row[j] = (i % 3) * r1[j] + (i % 5 - 2) * r2[j];
    }
    a.AppendRow(row);
  }
  Cluster cluster = MakeCluster(a, 3);
  LowRankExactProtocol protocol({.k = 1});
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(CovarianceError(a, result->sketch), 0.0,
              1e-6 * std::max(1.0, SquaredFrobeniusNorm(a)));
}

}  // namespace
}  // namespace distsketch
