// Regression pins for the channel-transport refactor: seeded protocol
// runs routed through the async ChannelTransport adapter must reproduce
// the pre-refactor synchronous transcripts bit for bit — transcript
// digest, analytic word count, wire bytes, control (NAK) bytes, and the
// result sketch are all pinned. A second suite asserts the two cluster
// flavours meter identically: the same send schedule through Cluster and
// AdditiveCluster produces equal CommStats, including the
// control_wire_bytes that AdditiveCluster's old direct-to-injector path
// under-counted.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/adaptive_sketch_protocol.h"
#include "dist/additive_cluster.h"
#include "dist/cluster.h"
#include "dist/exact_gram_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "dist/fault_injection.h"
#include "dist/row_sampling_protocol.h"
#include "dist/svs_protocol.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

uint64_t MatrixDigest(const Matrix& m) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  mix(m.rows());
  mix(m.cols());
  for (size_t i = 0; i < m.size(); ++i) {
    uint64_t bits;
    std::memcpy(&bits, m.data() + i, 8);
    mix(bits);
  }
  return h;
}

FaultConfig ChaosConfig() {
  FaultConfig fc;
  fc.default_profile.drop_prob = 0.08;
  fc.default_profile.duplicate_prob = 0.05;
  fc.default_profile.truncate_prob = 0.05;
  fc.default_profile.corrupt_prob = 0.05;
  fc.default_profile.transient_fail_prob = 0.04;
  fc.seed = 77;
  return fc;
}

Cluster MakeTestCluster(bool faults) {
  Matrix a = GenerateGaussian(512, 24, 1.0, 20240807);
  auto cluster =
      Cluster::Create(PartitionRows(a, 8, PartitionScheme::kRoundRobin), 0.1);
  DS_CHECK(cluster.ok());
  if (faults) cluster->InstallFaultPlan(ChaosConfig());
  return std::move(*cluster);
}

struct PinnedRun {
  const char* name;
  bool faults;
  uint64_t transcript_digest;
  uint64_t total_words;
  uint64_t total_wire_bytes;
  uint64_t control_wire_bytes;
  uint64_t sketch_digest;
};

// Captured from the pre-refactor synchronous Cluster::Send path (commit
// 68a7590) with the seeded workload above. Any drift here means the
// channel adapter changed an observable transcript.
const PinnedRun kPins[] = {
    {"fd_merge", false, 0xc4753034a1c6230dull, 2112ull, 17480ull, 0ull,
     0x0dcf00118e432f7dull},
    {"svs", false, 0x50555985a008bfe3ull, 64ull, 1794ull, 0ull,
     0xfd2e474e57b948e0ull},
    {"adaptive_sketch", false, 0xb0ab2648fb0c9ed1ull, 2080ull, 18416ull, 0ull,
     0x37a98bb41562029dull},
    {"exact_gram", false, 0xe9a55ef08162cfa5ull, 2400ull, 19768ull, 0ull,
     0x531714a36a1b9408ull},
    {"row_sampling", false, 0x2e37237af9c3a516ull, 2424ull, 21168ull, 0ull,
     0x92706e644040b951ull},
    {"fd_merge", true, 0x8d5771dbd8d1c5dcull, 2649ull, 22561ull, 43ull,
     0x0dcf00118e432f7dull},
    {"svs", true, 0xfa794e2725642d26ull, 129ull, 2707ull, 86ull,
     0xfd2e474e57b948e0ull},
    {"adaptive_sketch", true, 0xa5fc29b7f6d57929ull, 2167ull, 20219ull, 86ull,
     0x37a98bb41562029dull},
    {"exact_gram", true, 0xaeb2f50abdf721a0ull, 3009ull, 25421ull, 43ull,
     0x531714a36a1b9408ull},
    {"row_sampling", true, 0xc2dd40ddcc9e5801ull, 3557ull, 30751ull, 86ull,
     0x92706e644040b951ull},
};

std::shared_ptr<SketchProtocol> MakeProtocol(const std::string& name) {
  if (name == "fd_merge") {
    return std::make_shared<FdMergeProtocol>(FdMergeOptions{});
  }
  if (name == "svs") {
    return std::make_shared<SvsProtocol>(SvsProtocolOptions{});
  }
  if (name == "adaptive_sketch") {
    return std::make_shared<AdaptiveSketchProtocol>(AdaptiveSketchOptions{});
  }
  if (name == "exact_gram") {
    return std::make_shared<ExactGramProtocol>();
  }
  if (name == "row_sampling") {
    return std::make_shared<RowSamplingProtocol>(RowSamplingOptions{});
  }
  return nullptr;
}

TEST(ChannelEquivalence, SeededRunsMatchPreRefactorPins) {
  for (const PinnedRun& pin : kPins) {
    SCOPED_TRACE(std::string(pin.name) +
                 (pin.faults ? " (faults)" : " (clean)"));
    auto protocol = MakeProtocol(pin.name);
    ASSERT_NE(protocol, nullptr);
    Cluster cluster = MakeTestCluster(pin.faults);
    auto result = protocol->Run(cluster);
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(TranscriptDigest(cluster.log(), cluster.faults()),
              pin.transcript_digest);
    EXPECT_EQ(result->comm.total_words, pin.total_words);
    EXPECT_EQ(result->comm.total_wire_bytes, pin.total_wire_bytes);
    EXPECT_EQ(result->comm.control_wire_bytes, pin.control_wire_bytes);
    EXPECT_EQ(MatrixDigest(result->sketch), pin.sketch_digest);
  }
}

TEST(ChannelEquivalence, ResetLogReplaysIdenticalTranscript) {
  auto protocol = MakeProtocol("fd_merge");
  Cluster cluster = MakeTestCluster(/*faults=*/true);
  auto first = protocol->Run(cluster);
  ASSERT_TRUE(first.ok());
  const uint64_t digest1 = TranscriptDigest(cluster.log(), cluster.faults());
  cluster.ResetLog();
  auto second = protocol->Run(cluster);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(TranscriptDigest(cluster.log(), cluster.faults()), digest1);
  EXPECT_EQ(MatrixDigest(first->sketch), MatrixDigest(second->sketch));
}

// The two cluster flavours share one transport implementation, so an
// identical send schedule over identical fault plans must meter
// identically — in particular the NAK control bytes, which the old
// AdditiveCluster fast path dropped from its CommStats.
TEST(ChannelEquivalence, AdditiveClusterMetersLikeCluster) {
  Matrix a = GenerateGaussian(96, 12, 1.0, 4242);
  constexpr size_t kServers = 4;

  auto row_cluster = Cluster::Create(
      PartitionRows(a, kServers, PartitionScheme::kRoundRobin), 0.1);
  ASSERT_TRUE(row_cluster.ok());
  auto add_cluster =
      AdditiveCluster::Create(SplitAdditive(a, kServers, 99), 0.1);
  ASSERT_TRUE(add_cluster.ok());

  FaultConfig fc = ChaosConfig();
  fc.default_profile.drop_prob = 0.15;  // force retries -> NAK traffic
  row_cluster->InstallFaultPlan(fc);
  add_cluster->InstallFaultPlan(fc);

  Matrix block = GenerateGaussian(6, 12, 1.0, 7);
  for (int round = 0; round < 3; ++round) {
    for (int s = 0; s < static_cast<int>(kServers); ++s) {
      const wire::Message up =
          wire::DenseMessage("test/up", block);
      const wire::Message down = wire::ScalarMessage("test/down", 1.5);
      const SendOutcome row_up = row_cluster->Send(s, kCoordinator, up);
      const SendOutcome add_up = add_cluster->Send(s, kCoordinator, up);
      EXPECT_EQ(row_up.delivered, add_up.delivered);
      EXPECT_EQ(row_up.wire_bytes, add_up.wire_bytes);
      EXPECT_EQ(row_up.control_bytes, add_up.control_bytes);
      const SendOutcome row_down = row_cluster->Send(kCoordinator, s, down);
      const SendOutcome add_down = add_cluster->Send(kCoordinator, s, down);
      EXPECT_EQ(row_down.delivered, add_down.delivered);
      EXPECT_EQ(row_down.control_bytes, add_down.control_bytes);
    }
  }

  const CommStats row_stats = row_cluster->log().Stats();
  const CommStats add_stats = add_cluster->log().Stats();
  EXPECT_EQ(row_stats.total_words, add_stats.total_words);
  EXPECT_EQ(row_stats.total_wire_bytes, add_stats.total_wire_bytes);
  EXPECT_EQ(row_stats.control_wire_bytes, add_stats.control_wire_bytes);
  EXPECT_GT(add_stats.control_wire_bytes, 0u)
      << "fault plan produced no NAKs; raise drop_prob";
  EXPECT_EQ(TranscriptDigest(row_cluster->log(), row_cluster->faults()),
            TranscriptDigest(add_cluster->log(), add_cluster->faults()));
}

}  // namespace
}  // namespace distsketch
