#include "dist/fault_injection.h"

#include <gtest/gtest.h>

#include "dist/comm_log.h"
#include "dist/sim_clock.h"

namespace distsketch {
namespace {

// Checks the bucketing invariant on a log: every metered word is either a
// first-attempt word or a retransmit word.
void ExpectAccountingBalances(const CommLog& log) {
  const CommStats stats = log.Stats();
  EXPECT_EQ(stats.first_attempt_words + stats.retransmit_words,
            stats.total_words);
  uint64_t first = 0;
  uint64_t retrans = 0;
  for (const MessageRecord& m : log.messages()) {
    if (m.attempt == 0 && !m.duplicate) {
      first += m.words;
    } else {
      retrans += m.words;
    }
  }
  EXPECT_EQ(first, stats.first_attempt_words);
  EXPECT_EQ(retrans, stats.retransmit_words);
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
  clock.Advance(1.5);
  EXPECT_DOUBLE_EQ(clock.Now(), 1.5);
  clock.Advance(0.0);
  EXPECT_DOUBLE_EQ(clock.Now(), 1.5);
  clock.AdvanceTo(3.0);
  EXPECT_DOUBLE_EQ(clock.Now(), 3.0);
  // AdvanceTo never goes backwards.
  clock.AdvanceTo(2.0);
  EXPECT_DOUBLE_EQ(clock.Now(), 3.0);
  EXPECT_TRUE(clock.Expired(3.0));
  EXPECT_FALSE(clock.Expired(3.1));
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
}

TEST(FaultConfigTest, CanFaultDetectsAnyNonIdealProfile) {
  FaultConfig config;
  EXPECT_FALSE(config.CanFault());
  // Latency alone is not a fault: it perturbs timestamps, not payloads.
  config.default_profile.latency = 5.0;
  config.default_profile.latency_jitter = 0.5;
  EXPECT_FALSE(config.CanFault());
  config.per_server[2].drop_prob = 0.5;
  EXPECT_TRUE(config.CanFault());

  FaultConfig dying;
  dying.default_profile.die_at_time = 10.0;
  EXPECT_TRUE(dying.CanFault());
}

TEST(FaultConfigTest, ProfileForUsesOverrides) {
  FaultConfig config;
  config.default_profile.drop_prob = 0.1;
  config.per_server[3].drop_prob = 0.9;
  EXPECT_DOUBLE_EQ(config.ProfileFor(0).drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(config.ProfileFor(3).drop_prob, 0.9);
}

TEST(FaultInjectorTest, IdealConfigDeliversEverythingFirstTry) {
  FaultInjector injector{FaultConfig{}};
  CommLog log(64);
  log.BeginRound();
  for (int i = 0; i < 4; ++i) {
    const SendOutcome out = injector.Send(log, i, kCoordinator, "payload", 10);
    EXPECT_TRUE(out.delivered);
    EXPECT_EQ(out.attempts, 1);
    EXPECT_EQ(out.wire_words, 10u);
    EXPECT_FALSE(out.server_lost);
  }
  EXPECT_EQ(log.messages().size(), 4u);
  for (const MessageRecord& m : log.messages()) {
    EXPECT_EQ(m.attempt, 0);
    EXPECT_FALSE(m.truncated);
    EXPECT_FALSE(m.duplicate);
  }
  // Default latency 1.0 per delivery.
  EXPECT_DOUBLE_EQ(injector.clock().Now(), 4.0);
  EXPECT_TRUE(injector.lost_servers().empty());
  ExpectAccountingBalances(log);
}

TEST(FaultInjectorTest, CertainDropExhaustsRetriesAndLosesServer) {
  FaultConfig config;
  config.default_profile.drop_prob = 1.0;
  config.max_retries = 3;
  FaultInjector injector(config);
  CommLog log(64);
  log.BeginRound();

  const SendOutcome out = injector.Send(log, 0, kCoordinator, "sketch", 7);
  EXPECT_FALSE(out.delivered);
  EXPECT_TRUE(out.server_lost);
  EXPECT_EQ(out.attempts, 4);  // first try + 3 retries
  // Every attempt's words crossed the wire before being lost.
  EXPECT_EQ(out.wire_words, 4u * 7u);
  EXPECT_TRUE(injector.IsLost(0));

  const CommStats stats = log.Stats();
  EXPECT_EQ(stats.total_words, 28u);
  EXPECT_EQ(stats.first_attempt_words, 7u);
  EXPECT_EQ(stats.retransmit_words, 21u);
  EXPECT_EQ(stats.num_retransmits, 3u);
  ExpectAccountingBalances(log);

  // A lost server fails instantly, without wire traffic or events.
  const size_t events_before = injector.events().size();
  const SendOutcome again = injector.Send(log, 0, kCoordinator, "more", 5);
  EXPECT_FALSE(again.delivered);
  EXPECT_TRUE(again.server_lost);
  EXPECT_EQ(again.attempts, 0);
  EXPECT_EQ(again.wire_words, 0u);
  EXPECT_EQ(injector.events().size(), events_before);
  EXPECT_EQ(stats.total_words, log.Stats().total_words);
}

TEST(FaultInjectorTest, LossIsPerServerNotGlobal) {
  FaultConfig config;
  config.per_server[0].drop_prob = 1.0;
  config.max_retries = 1;
  FaultInjector injector(config);
  CommLog log(64);
  log.BeginRound();
  EXPECT_FALSE(injector.Send(log, 0, kCoordinator, "x", 3).delivered);
  EXPECT_TRUE(injector.Send(log, 1, kCoordinator, "x", 3).delivered);
  EXPECT_TRUE(injector.IsLost(0));
  EXPECT_FALSE(injector.IsLost(1));
}

TEST(FaultInjectorTest, BroadcastLegFaultsTheReceivingServer) {
  FaultConfig config;
  config.per_server[2].drop_prob = 1.0;
  config.max_retries = 0;
  FaultInjector injector(config);
  CommLog log(64);
  log.BeginRound();
  // Coordinator -> server 2: the server endpoint is the receiver.
  const SendOutcome out = injector.Send(log, kCoordinator, 2, "bcast", 1);
  EXPECT_FALSE(out.delivered);
  EXPECT_TRUE(injector.IsLost(2));
}

TEST(FaultInjectorTest, TruncationMetersStrictPrefixAndRetries) {
  FaultConfig config;
  config.default_profile.truncate_prob = 1.0;
  config.max_retries = 2;
  FaultInjector injector(config);
  CommLog log(64);
  log.BeginRound();

  const uint64_t words = 20;
  const SendOutcome out =
      injector.Send(log, 0, kCoordinator, "sketch", words, words * 64);
  EXPECT_FALSE(out.delivered);
  EXPECT_TRUE(out.server_lost);
  // 3 truncated payload attempts, each answered by a NAK control record.
  ASSERT_EQ(log.messages().size(), 6u);
  size_t truncated_records = 0;
  size_t nak_records = 0;
  for (const MessageRecord& m : log.messages()) {
    if (m.control) {
      ++nak_records;
      EXPECT_EQ(m.words, 0u);
      EXPECT_GT(m.wire_bytes, 0u);
      continue;
    }
    ++truncated_records;
    EXPECT_TRUE(m.truncated);
    EXPECT_GE(m.words, 1u);
    EXPECT_LT(m.words, words);  // strict prefix
    EXPECT_GE(m.bits, 1u);
    EXPECT_LT(m.bits, words * 64);
  }
  EXPECT_EQ(truncated_records, 3u);
  EXPECT_EQ(nak_records, 3u);
  ExpectAccountingBalances(log);
}

TEST(FaultInjectorTest, OneWordMessagesCannotBeTruncated) {
  FaultConfig config;
  config.default_profile.truncate_prob = 1.0;
  FaultInjector injector(config);
  CommLog log(64);
  log.BeginRound();
  const SendOutcome out = injector.Send(log, 0, kCoordinator, "mass", 1);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.attempts, 1);
  ASSERT_EQ(log.messages().size(), 1u);
  EXPECT_FALSE(log.messages()[0].truncated);
}

TEST(FaultInjectorTest, DuplicationDeliversButMetersExtraCopy) {
  FaultConfig config;
  config.default_profile.duplicate_prob = 1.0;
  FaultInjector injector(config);
  CommLog log(64);
  log.BeginRound();
  const SendOutcome out = injector.Send(log, 1, kCoordinator, "rows", 6);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.wire_words, 12u);
  ASSERT_EQ(log.messages().size(), 2u);
  EXPECT_FALSE(log.messages()[0].duplicate);
  EXPECT_TRUE(log.messages()[1].duplicate);
  const CommStats stats = log.Stats();
  EXPECT_EQ(stats.first_attempt_words, 6u);
  EXPECT_EQ(stats.retransmit_words, 6u);
  EXPECT_EQ(stats.num_retransmits, 1u);
  ExpectAccountingBalances(log);
}

TEST(FaultInjectorTest, TransientStallSendsNothingAndBurnsTimeout) {
  FaultConfig config;
  config.default_profile.transient_fail_prob = 1.0;
  config.max_retries = 1;
  config.timeout = 4.0;
  config.backoff.base_delay = 1.0;
  FaultInjector injector(config);
  CommLog log(64);
  log.BeginRound();
  const SendOutcome out = injector.Send(log, 0, kCoordinator, "x", 9);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_EQ(out.wire_words, 0u);
  EXPECT_TRUE(log.messages().empty());
  // Two timeouts plus one backoff delay of 1.0.
  EXPECT_DOUBLE_EQ(injector.clock().Now(), 2.0 * 4.0 + 1.0);
}

TEST(FaultInjectorTest, DeadServerStopsRetriesImmediately) {
  FaultConfig config;
  config.default_profile.die_at_time = 0.0;
  config.max_retries = 5;
  config.timeout = 2.0;
  FaultInjector injector(config);
  CommLog log(64);
  log.BeginRound();
  const SendOutcome out = injector.Send(log, 0, kCoordinator, "x", 3);
  EXPECT_FALSE(out.delivered);
  EXPECT_TRUE(out.server_lost);
  // Dead peers never recover, so there is exactly one (futile) attempt.
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.wire_words, 0u);
  EXPECT_TRUE(log.messages().empty());
  EXPECT_TRUE(injector.IsLost(0));
}

TEST(FaultInjectorTest, ServerDiesMidRun) {
  FaultConfig config;
  // Default latency 1.0: the first delivery moves the clock to 1.0,
  // past the death time, so the second send finds a dead peer.
  config.default_profile.die_at_time = 0.5;
  config.max_retries = 0;
  FaultInjector injector(config);
  CommLog log(64);
  log.BeginRound();
  EXPECT_TRUE(injector.Send(log, 0, kCoordinator, "first", 2).delivered);
  const SendOutcome out = injector.Send(log, 0, kCoordinator, "second", 2);
  EXPECT_FALSE(out.delivered);
  EXPECT_TRUE(out.server_lost);
  EXPECT_EQ(log.messages().size(), 1u);
}

TEST(FaultInjectorTest, BackoffDelaysFollowThePolicy) {
  FaultConfig config;
  config.default_profile.drop_prob = 1.0;
  config.max_retries = 3;
  config.timeout = 10.0;
  config.backoff = BackoffPolicy{.base_delay = 1.0, .multiplier = 2.0,
                                 .max_delay = 64.0};
  FaultInjector injector(config);
  CommLog log(64);
  log.BeginRound();
  injector.Send(log, 0, kCoordinator, "x", 2);
  // 4 attempts * timeout + backoffs 1 + 2 + 4.
  EXPECT_DOUBLE_EQ(injector.clock().Now(), 4.0 * 10.0 + 1.0 + 2.0 + 4.0);
  int backoffs = 0;
  for (const FaultEvent& e : injector.events()) {
    if (e.kind == FaultEventKind::kBackoff) ++backoffs;
  }
  EXPECT_EQ(backoffs, 3);
}

// Drives a moderately faulty traffic pattern and returns the digest.
uint64_t RunTrafficDigest(uint64_t seed) {
  FaultConfig config;
  config.default_profile.drop_prob = 0.3;
  config.default_profile.duplicate_prob = 0.2;
  config.default_profile.truncate_prob = 0.2;
  config.default_profile.transient_fail_prob = 0.1;
  config.default_profile.latency_jitter = 0.5;
  config.seed = seed;
  FaultInjector injector(config);
  CommLog log(64);
  log.BeginRound();
  for (int i = 0; i < 8; ++i) {
    injector.Send(log, i % 4, kCoordinator, "up", 12);
  }
  log.BeginRound();
  for (int i = 0; i < 4; ++i) {
    injector.Send(log, kCoordinator, i, "down", 3);
  }
  return TranscriptDigest(log, &injector);
}

TEST(FaultInjectorTest, IdenticalSeedGivesIdenticalTranscript) {
  EXPECT_EQ(RunTrafficDigest(99), RunTrafficDigest(99));
  EXPECT_NE(RunTrafficDigest(99), RunTrafficDigest(100));
}

TEST(FaultInjectorTest, ResetReplaysTheIdenticalSchedule) {
  FaultConfig config;
  config.default_profile.drop_prob = 0.4;
  config.default_profile.duplicate_prob = 0.3;
  config.seed = 5;
  FaultInjector injector(config);

  CommLog log_a(64);
  log_a.BeginRound();
  for (int i = 0; i < 6; ++i) injector.Send(log_a, i % 3, kCoordinator, "m", 9);
  const uint64_t digest_a = TranscriptDigest(log_a, &injector);

  injector.Reset();
  EXPECT_DOUBLE_EQ(injector.clock().Now(), 0.0);
  EXPECT_TRUE(injector.events().empty());
  EXPECT_TRUE(injector.lost_servers().empty());

  CommLog log_b(64);
  log_b.BeginRound();
  for (int i = 0; i < 6; ++i) injector.Send(log_b, i % 3, kCoordinator, "m", 9);
  EXPECT_EQ(digest_a, TranscriptDigest(log_b, &injector));
}

TEST(TranscriptDigestTest, SensitiveToEveryMeteredField) {
  CommLog base(64);
  base.BeginRound();
  base.Record(0, kCoordinator, "a", 5);

  CommLog other_words(64);
  other_words.BeginRound();
  other_words.Record(0, kCoordinator, "a", 6);

  CommLog other_tag(64);
  other_tag.BeginRound();
  other_tag.Record(0, kCoordinator, "b", 5);

  const uint64_t h = TranscriptDigest(base, nullptr);
  EXPECT_NE(h, TranscriptDigest(other_words, nullptr));
  EXPECT_NE(h, TranscriptDigest(other_tag, nullptr));

  CommLog same(64);
  same.BeginRound();
  same.Record(0, kCoordinator, "a", 5);
  EXPECT_EQ(h, TranscriptDigest(same, nullptr));
}

}  // namespace
}  // namespace distsketch
