#include "dist/protocol_planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <type_traits>
#include <vector>

#include "dist/exact_gram_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "sketch/error_metrics.h"
#include "telemetry/telemetry.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

// The cheapest candidate the planner could have picked, straight from
// the public Thm 2/6/7 cost formulas.
double MinCandidateWords(size_t s, size_t d, const SketchRequest& req) {
  double best = std::min(PredictExactGramWords(s, d),
                         PredictFdMergeWords(s, d, req));
  if (req.allow_randomized) {
    if (req.k == 0) {
      best = std::min({best, PredictRowSamplingWords(s, d, req),
                       PredictSvsWords(s, d, req)});
    } else {
      best = std::min(best, PredictAdaptiveWords(s, d, req));
    }
  }
  return best;
}

// Runs the planner across a sweep and returns the picked protocol names.
std::vector<std::string> SweepPicks(const std::vector<size_t>& servers,
                                    size_t d, const SketchRequest& req) {
  std::vector<std::string> picks;
  for (size_t s : servers) {
    auto plan = PlanSketchProtocol(s, d, req);
    EXPECT_TRUE(plan.ok());
    // Whatever wins, its predicted cost must be the candidate minimum.
    EXPECT_DOUBLE_EQ(plan->predicted_words, MinCandidateWords(s, d, req));
    picks.push_back(std::string(plan->protocol->Name()));
  }
  return picks;
}

const telemetry::SpanAttr* FindAttr(const telemetry::SpanRecord& span,
                                    std::string_view key) {
  for (const telemetry::SpanAttr& a : span.attrs) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

TEST(ProtocolPlannerTest, Validation) {
  EXPECT_FALSE(PlanSketchProtocol(0, 8, {}).ok());
  EXPECT_FALSE(PlanSketchProtocol(4, 0, {}).ok());
  SketchRequest bad;
  bad.eps = 0.0;
  EXPECT_FALSE(PlanSketchProtocol(4, 8, bad).ok());
}

TEST(ProtocolPlannerTest, CoarseEpsPicksExactGram) {
  // 1/eps >= d: the trivial O(sd^2) protocol is optimal (end of §2.1).
  SketchRequest req;
  req.eps = 0.5;
  req.allow_randomized = false;
  auto plan = PlanSketchProtocol(4, 2, req);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->protocol->Name(), "exact_gram");
}

TEST(ProtocolPlannerTest, DeterministicRequestPicksFd) {
  // l = k + k/eps = 10 rows per server beats the d(d+1)/2-word Gram.
  SketchRequest req;
  req.eps = 0.25;
  req.k = 2;
  req.allow_randomized = false;
  auto plan = PlanSketchProtocol(16, 64, req);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->protocol->Name(), "fd_merge");
}

TEST(ProtocolPlannerTest, ManyServersPicksRandomized) {
  SketchRequest req;
  req.eps = 0.1;
  req.k = 4;
  auto plan = PlanSketchProtocol(64, 64, req);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->protocol->Name(), "adaptive_sketch");
}

TEST(ProtocolPlannerTest, EpsZeroManyServersPicksSvs) {
  // The SVS win region needs all three: d > 1/eps (else exact Gram),
  // sqrt(s) < ~1/(2 eps) (else sampling), sqrt(s) > ~4 sqrt(log d)
  // (else FD) — the Table 1 geometry.
  SketchRequest req;
  req.eps = 0.01;
  req.k = 0;
  auto plan = PlanSketchProtocol(256, 192, req);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->protocol->Name(), "svs");
}

TEST(ProtocolPlannerTest, HugeFleetWeakGuaranteePicksSampling) {
  // Sampling's O(s + d/eps^2) is nearly s-free: at very large s with a
  // moderate eps and only the weak guarantee, it undercuts even the
  // sqrt(s)-scaling SVS.
  SketchRequest req;
  req.eps = 0.3;
  req.k = 0;
  auto plan = PlanSketchProtocol(512, 64, req);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->protocol->Name(), "row_sampling");
}

TEST(ProtocolPlannerTest, ServerSweepCrossesGramToSvsToSampling) {
  // Thm 2 vs Thm 6 geometry at (d, eps) = (192, 0.01), k = 0: exact Gram
  // grows like s*d^2, SVS like sqrt(s)*d/eps, sampling is nearly s-free.
  // Sweeping s must walk the picks through those three regimes in order,
  // with each crossover where the cost formulas actually intersect.
  SketchRequest req;
  req.eps = 0.01;
  req.k = 0;
  const std::vector<size_t> servers = {1, 4, 64, 256, 1024, 4096};
  const std::vector<std::string> picks = SweepPicks(servers, 192, req);
  const std::vector<std::string> expected = {
      "exact_gram", "exact_gram", "exact_gram",
      "svs",        "row_sampling", "row_sampling"};
  EXPECT_EQ(picks, expected);
}

TEST(ProtocolPlannerTest, ServerSweepCrossesFdToAdaptive) {
  // Thm 2 vs Thm 7 at (d, eps, k) = (64, 0.25, 2): deterministic FD
  // merge costs s*l*d while adaptive costs s*k*d + sqrt(s)*k*d/eps, so
  // FD wins small fleets and adaptive wins once sqrt(s) amortizes.
  SketchRequest req;
  req.eps = 0.25;
  req.k = 2;
  const std::vector<size_t> servers = {1, 4, 16, 64};
  const std::vector<std::string> picks = SweepPicks(servers, 64, req);
  const std::vector<std::string> expected = {
      "fd_merge", "fd_merge", "adaptive_sketch", "adaptive_sketch"};
  EXPECT_EQ(picks, expected);
}

TEST(ProtocolPlannerTest, EpsSweepCrossesSamplingToSvs) {
  // At fixed (s, d) = (256, 192), k = 0: sampling costs d/eps^2 while
  // SVS costs sqrt(s)*d/eps — coarse eps favors sampling, fine eps
  // flips to SVS before the deterministic fallbacks.
  SketchRequest req;
  req.k = 0;
  std::vector<std::string> picks;
  for (double eps : {0.3, 0.1, 0.01}) {
    req.eps = eps;
    auto plan = PlanSketchProtocol(256, 192, req);
    ASSERT_TRUE(plan.ok());
    EXPECT_DOUBLE_EQ(plan->predicted_words,
                     MinCandidateWords(256, 192, req));
    picks.push_back(std::string(plan->protocol->Name()));
  }
  const std::vector<std::string> expected = {"row_sampling", "row_sampling",
                                             "svs"};
  EXPECT_EQ(picks, expected);
}

TEST(ProtocolPlannerTest, TelemetryReportsDecisionRationale) {
  telemetry::Telemetry telem;
  telemetry::ScopedTelemetry scope(telem);

  SketchRequest req;
  req.eps = 0.01;
  req.k = 0;
  auto plan = PlanSketchProtocol(256, 192, req);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->protocol->Name(), "svs");

  const std::vector<telemetry::SpanRecord> spans = telem.Spans();
  const telemetry::SpanRecord* plan_span = nullptr;
  for (const telemetry::SpanRecord& s : spans) {
    if (s.name == "planner/plan") plan_span = &s;
  }
  ASSERT_NE(plan_span, nullptr);

  // The span carries the full decision: instance, every candidate cost,
  // the winner, and the human-readable rationale.
  const telemetry::SpanAttr* chosen = FindAttr(*plan_span, "chosen");
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->value, "svs");
  const telemetry::SpanAttr* rationale = FindAttr(*plan_span, "rationale");
  ASSERT_NE(rationale, nullptr);
  EXPECT_EQ(rationale->value, plan->rationale);
  for (const char* key : {"s", "d", "eps", "words.exact_gram",
                          "words.fd_merge", "words.row_sampling",
                          "words.svs", "predicted_words"}) {
    EXPECT_NE(FindAttr(*plan_span, key), nullptr) << key;
  }

  EXPECT_EQ(telem.metrics().CounterValue("planner.plans"), 1u);
  EXPECT_EQ(telem.metrics().CounterValue("planner.pick.svs"), 1u);
  EXPECT_EQ(telem.metrics().CounterValue("planner.pick.fd_merge"), 0u);
}

TEST(ProtocolPlannerTest, InboundModelMatchesTopologyWidths) {
  // Star: the coordinator receives all s uplinks. Tree: only top_width,
  // each the same size (every associative merge keeps the payload fixed).
  const double msg = 100.0;
  EXPECT_DOUBLE_EQ(
      PredictCoordinatorInboundWords(64, MergeTopologyOptions::Star(), msg),
      64.0 * msg);
  auto topo = MergeTopology::Build(64, MergeTopologyOptions::Tree(8));
  ASSERT_TRUE(topo.ok());
  EXPECT_DOUBLE_EQ(
      PredictCoordinatorInboundWords(64, MergeTopologyOptions::Tree(8), msg),
      static_cast<double>(topo->top_width()) * msg);
}

TEST(ProtocolPlannerTest, TopologyCrossoverSmallStaysStarLargeGoesTree) {
  // The critical path of a star is s serialized receives in one round; a
  // k-ary tree pays fewer receives but one round-latency charge per
  // stage. At modest message sizes the extra rounds swamp the receive
  // savings for tiny fleets, while big fleets always amortize them.
  const double msg = 64.0;
  for (const size_t s : {1u, 2u, 4u}) {
    EXPECT_TRUE(ChooseMergeTopology(s, msg).is_star()) << "s=" << s;
  }
  for (const size_t s : {64u, 256u, 1024u}) {
    const MergeTopologyOptions choice = ChooseMergeTopology(s, msg);
    EXPECT_EQ(choice.kind, TopologyKind::kTree) << "s=" << s;
    // And the choice must actually be the argmin of the model it claims
    // to minimize.
    const double chosen_cost = PredictCriticalPathWords(s, choice, msg);
    EXPECT_LE(chosen_cost,
              PredictCriticalPathWords(s, MergeTopologyOptions::Star(), msg));
    for (const size_t fanout : {2u, 4u, 8u, 16u, 32u}) {
      EXPECT_LE(chosen_cost,
                PredictCriticalPathWords(
                    s, MergeTopologyOptions::Tree(fanout), msg));
    }
  }
}

TEST(ProtocolPlannerTest, AutoTopologyThreadsIntoThePlannedProtocol) {
  SketchRequest req;
  req.eps = 0.25;
  req.k = 2;
  req.allow_randomized = false;  // force fd_merge at this instance
  req.auto_topology = true;
  auto plan = PlanSketchProtocol(256, 64, req);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->protocol->Name(), "fd_merge");
  const auto& fd = static_cast<const FdMergeProtocol&>(*plan->protocol);
  EXPECT_EQ(fd.options().topology.kind, plan->topology.kind);
  EXPECT_EQ(fd.options().topology.fanout, plan->topology.fanout);
  EXPECT_EQ(plan->topology.kind, TopologyKind::kTree);
  // A tree plan must predict strictly less coordinator inbound than its
  // total words, and say so in the rationale.
  EXPECT_LT(plan->predicted_coordinator_words, plan->predicted_words);
  EXPECT_NE(plan->rationale.find("coordinator inbound"), std::string::npos);
}

TEST(ProtocolPlannerTest, ExplicitTopologyRequestIsHonored) {
  SketchRequest req;
  req.eps = 0.5;
  req.allow_randomized = false;
  req.topology = MergeTopologyOptions::Tree(4);
  auto plan = PlanSketchProtocol(32, 2, req);  // exact_gram regime
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->protocol->Name(), "exact_gram");
  const auto& gram = static_cast<const ExactGramProtocol&>(*plan->protocol);
  EXPECT_EQ(gram.options().topology.kind, TopologyKind::kTree);
  EXPECT_EQ(gram.options().topology.fanout, 4u);
  const double msg = 2.0 * 3.0 / 2.0;  // d(d+1)/2 at d=2
  EXPECT_DOUBLE_EQ(
      plan->predicted_coordinator_words,
      PredictCoordinatorInboundWords(32, req.topology, msg));
}

TEST(ProtocolPlannerTest, StarOnlyProtocolsKeepStarPlanFields) {
  SketchRequest req;
  req.eps = 0.3;
  req.k = 0;
  req.auto_topology = true;
  auto plan = PlanSketchProtocol(512, 64, req);  // row_sampling regime
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->protocol->Name(), "row_sampling");
  EXPECT_TRUE(plan->topology.is_star());
  EXPECT_DOUBLE_EQ(plan->predicted_coordinator_words, plan->predicted_words);
}

TEST(ProtocolPlannerTest, CostFormulasAreMonotone) {
  SketchRequest req;
  req.eps = 0.1;
  req.k = 2;
  EXPECT_LT(PredictFdMergeWords(4, 32, req), PredictFdMergeWords(8, 32, req));
  EXPECT_LT(PredictSvsWords(4, 32, req), PredictSvsWords(16, 32, req));
  SketchRequest coarse = req;
  coarse.eps = 0.4;
  EXPECT_LT(PredictAdaptiveWords(8, 32, coarse),
            PredictAdaptiveWords(8, 32, req));
}

TEST(ProtocolPlannerTest, PlannedProtocolRunsAndMeetsBudget) {
  const Matrix a = GenerateLowRankPlusNoise({.rows = 320,
                                             .cols = 24,
                                             .rank = 4,
                                             .noise_stddev = 0.3,
                                             .seed = 1});
  SketchRequest req;
  req.eps = 0.25;
  req.k = 3;
  auto plan = PlanSketchProtocol(8, 24, req);
  ASSERT_TRUE(plan.ok());
  auto cluster = Cluster::Create(
      PartitionRows(a, 8, PartitionScheme::kRoundRobin), req.eps);
  ASSERT_TRUE(cluster.ok());
  auto result = plan->protocol->Run(*cluster);
  ASSERT_TRUE(result.ok());
  // Certify at the protocol's guarantee constant (3 eps covers all).
  EXPECT_TRUE(IsEpsKSketch(a, result->sketch, 3.0 * req.eps, req.k));
  EXPECT_FALSE(plan->rationale.empty());
}

TEST(ProtocolPlannerTest, PredictionWithinFactorOfMeasured) {
  // The cost model should be within ~3x of the metered words (it is a
  // planner, not an oracle).
  const Matrix a = GenerateZipfSpectrum(
      {.rows = 640, .cols = 32, .alpha = 0.8, .seed = 2});
  for (size_t s : {4u, 32u}) {
    SketchRequest req;
    req.eps = 0.1;
    req.k = 0;
    auto plan = PlanSketchProtocol(s, 32, req);
    ASSERT_TRUE(plan.ok());
    auto cluster = Cluster::Create(
        PartitionRows(a, s, PartitionScheme::kRoundRobin), req.eps);
    ASSERT_TRUE(cluster.ok());
    auto result = plan->protocol->Run(*cluster);
    ASSERT_TRUE(result.ok());
    const double measured =
        static_cast<double>(result->comm.total_words);
    EXPECT_LT(measured, 3.0 * plan->predicted_words);
    EXPECT_GT(measured, plan->predicted_words / 8.0);
  }
}

// The request's semantic half IS the shared SketchGoal definition — the
// auto-configurer and the planner cannot drift apart (satellite of the
// autoconf subsystem).
static_assert(std::is_base_of_v<SketchGoal, SketchRequest>,
              "SketchRequest must derive from the shared SketchGoal");

TEST(ProtocolPlannerTest, CountSketchWordsFollowTable1Formula) {
  SketchRequest req;
  req.eps = 0.2;
  // s * ceil(4/eps^2) * d + s seed downlinks.
  EXPECT_DOUBLE_EQ(PredictCountSketchWords(8, 16, req),
                   8.0 * 100.0 * 16.0 + 8.0);
  // Quadratic in 1/eps: halving eps quadruples the bucket payload.
  SketchRequest tight = req;
  tight.eps = 0.1;
  EXPECT_GT(PredictCountSketchWords(8, 16, tight),
            3.5 * PredictCountSketchWords(8, 16, req));
}

TEST(ProtocolPlannerTest, CountSketchCrossesExactGramInHighDimension) {
  // exact_gram pays s*d^2/2; countsketch pays s*d*4/eps^2 — per Table 1
  // the crossover is at d ~ 8/eps^2, independent of s.
  SketchRequest req;
  req.eps = 0.5;  // crossover at d = 32
  const size_t s = 4;
  EXPECT_LT(PredictExactGramWords(s, 16),
            PredictCountSketchWords(s, 16, req));
  EXPECT_GT(PredictExactGramWords(s, 256),
            PredictCountSketchWords(s, 256, req));
}

TEST(ProtocolPlannerTest, ArbitraryPartitionPlansCountSketch) {
  SketchRequest req;
  req.eps = 0.2;
  req.arbitrary_partition = true;
  auto plan = PlanSketchProtocol(8, 16, req);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->protocol->Name(), "countsketch");
  EXPECT_DOUBLE_EQ(plan->predicted_words,
                   PredictCountSketchWords(8, 16, req));
}

TEST(ProtocolPlannerTest, ArbitraryPartitionRejectsDeterministicAndRankGoals) {
  SketchRequest det;
  det.eps = 0.2;
  det.arbitrary_partition = true;
  det.allow_randomized = false;
  auto plan = PlanSketchProtocol(8, 16, det);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);

  SketchRequest ranked;
  ranked.eps = 0.2;
  ranked.arbitrary_partition = true;
  ranked.k = 4;
  plan = PlanSketchProtocol(8, 16, ranked);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ProtocolPlannerTest, ArbitraryPartitionHonorsTopologyRequest) {
  SketchRequest req;
  req.eps = 0.25;
  req.arbitrary_partition = true;
  req.topology = MergeTopologyOptions::Tree(4);
  auto plan = PlanSketchProtocol(16, 8, req);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->topology.kind, TopologyKind::kTree);
  // Tree reduction shrinks coordinator inbound below the star's s*m*d.
  EXPECT_LT(plan->predicted_coordinator_words, plan->predicted_words);
}

}  // namespace
}  // namespace distsketch
