#include "dist/protocol_planner.h"

#include <gtest/gtest.h>

#include "sketch/error_metrics.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

TEST(ProtocolPlannerTest, Validation) {
  EXPECT_FALSE(PlanSketchProtocol(0, 8, {}).ok());
  EXPECT_FALSE(PlanSketchProtocol(4, 0, {}).ok());
  SketchRequest bad;
  bad.eps = 0.0;
  EXPECT_FALSE(PlanSketchProtocol(4, 8, bad).ok());
}

TEST(ProtocolPlannerTest, CoarseEpsPicksExactGram) {
  // 1/eps >= d: the trivial O(sd^2) protocol is optimal (end of §2.1).
  SketchRequest req;
  req.eps = 0.5;
  req.allow_randomized = false;
  auto plan = PlanSketchProtocol(4, 2, req);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->protocol->Name(), "exact_gram");
}

TEST(ProtocolPlannerTest, DeterministicRequestPicksFd) {
  // l = k + k/eps = 10 rows per server beats the d(d+1)/2-word Gram.
  SketchRequest req;
  req.eps = 0.25;
  req.k = 2;
  req.allow_randomized = false;
  auto plan = PlanSketchProtocol(16, 64, req);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->protocol->Name(), "fd_merge");
}

TEST(ProtocolPlannerTest, ManyServersPicksRandomized) {
  SketchRequest req;
  req.eps = 0.1;
  req.k = 4;
  auto plan = PlanSketchProtocol(64, 64, req);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->protocol->Name(), "adaptive_sketch");
}

TEST(ProtocolPlannerTest, EpsZeroManyServersPicksSvs) {
  // The SVS win region needs all three: d > 1/eps (else exact Gram),
  // sqrt(s) < ~1/(2 eps) (else sampling), sqrt(s) > ~4 sqrt(log d)
  // (else FD) — the Table 1 geometry.
  SketchRequest req;
  req.eps = 0.01;
  req.k = 0;
  auto plan = PlanSketchProtocol(256, 192, req);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->protocol->Name(), "svs");
}

TEST(ProtocolPlannerTest, HugeFleetWeakGuaranteePicksSampling) {
  // Sampling's O(s + d/eps^2) is nearly s-free: at very large s with a
  // moderate eps and only the weak guarantee, it undercuts even the
  // sqrt(s)-scaling SVS.
  SketchRequest req;
  req.eps = 0.3;
  req.k = 0;
  auto plan = PlanSketchProtocol(512, 64, req);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->protocol->Name(), "row_sampling");
}

TEST(ProtocolPlannerTest, CostFormulasAreMonotone) {
  SketchRequest req;
  req.eps = 0.1;
  req.k = 2;
  EXPECT_LT(PredictFdMergeWords(4, 32, req), PredictFdMergeWords(8, 32, req));
  EXPECT_LT(PredictSvsWords(4, 32, req), PredictSvsWords(16, 32, req));
  SketchRequest coarse = req;
  coarse.eps = 0.4;
  EXPECT_LT(PredictAdaptiveWords(8, 32, coarse),
            PredictAdaptiveWords(8, 32, req));
}

TEST(ProtocolPlannerTest, PlannedProtocolRunsAndMeetsBudget) {
  const Matrix a = GenerateLowRankPlusNoise({.rows = 320,
                                             .cols = 24,
                                             .rank = 4,
                                             .noise_stddev = 0.3,
                                             .seed = 1});
  SketchRequest req;
  req.eps = 0.25;
  req.k = 3;
  auto plan = PlanSketchProtocol(8, 24, req);
  ASSERT_TRUE(plan.ok());
  auto cluster = Cluster::Create(
      PartitionRows(a, 8, PartitionScheme::kRoundRobin), req.eps);
  ASSERT_TRUE(cluster.ok());
  auto result = plan->protocol->Run(*cluster);
  ASSERT_TRUE(result.ok());
  // Certify at the protocol's guarantee constant (3 eps covers all).
  EXPECT_TRUE(IsEpsKSketch(a, result->sketch, 3.0 * req.eps, req.k));
  EXPECT_FALSE(plan->rationale.empty());
}

TEST(ProtocolPlannerTest, PredictionWithinFactorOfMeasured) {
  // The cost model should be within ~3x of the metered words (it is a
  // planner, not an oracle).
  const Matrix a = GenerateZipfSpectrum(
      {.rows = 640, .cols = 32, .alpha = 0.8, .seed = 2});
  for (size_t s : {4u, 32u}) {
    SketchRequest req;
    req.eps = 0.1;
    req.k = 0;
    auto plan = PlanSketchProtocol(s, 32, req);
    ASSERT_TRUE(plan.ok());
    auto cluster = Cluster::Create(
        PartitionRows(a, s, PartitionScheme::kRoundRobin), req.eps);
    ASSERT_TRUE(cluster.ok());
    auto result = plan->protocol->Run(*cluster);
    ASSERT_TRUE(result.ok());
    const double measured =
        static_cast<double>(result->comm.total_words);
    EXPECT_LT(measured, 3.0 * plan->predicted_words);
    EXPECT_GT(measured, plan->predicted_words / 8.0);
  }
}

}  // namespace
}  // namespace distsketch
