#include "dist/additive_cluster.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

TEST(AdditiveClusterTest, Validation) {
  EXPECT_FALSE(AdditiveCluster::Create({}, 0.1).ok());
  std::vector<Matrix> mismatched;
  mismatched.push_back(Matrix(3, 4));
  mismatched.push_back(Matrix(3, 5));
  EXPECT_FALSE(AdditiveCluster::Create(std::move(mismatched), 0.1).ok());
  std::vector<Matrix> ok_shares;
  ok_shares.push_back(GenerateGaussian(3, 4, 1.0, 1));
  EXPECT_FALSE(AdditiveCluster::Create(std::move(ok_shares), 0.0).ok());
}

TEST(AdditiveClusterTest, SplitAdditiveSumsBack) {
  const Matrix a = GenerateLowRankPlusNoise(
      {.rows = 40, .cols = 8, .rank = 3, .noise_stddev = 0.2, .seed = 1});
  const auto shares = SplitAdditive(a, 5, 7);
  ASSERT_EQ(shares.size(), 5u);
  Matrix sum(40, 8);
  for (const auto& share : shares) sum = Add(sum, share);
  EXPECT_TRUE(AlmostEqual(sum, a, 1e-10));
  // Shares individually look nothing like A (dense noise).
  EXPECT_GT(CovarianceError(a, shares[0]),
            0.3 * SquaredFrobeniusNorm(a) /
                static_cast<double>(a.cols()));
}

TEST(AdditiveClusterTest, LocalGramsDoNotAddUp) {
  // The reason the row-partition protocols fail here: sum of share
  // Grams != Gram of sum.
  const Matrix a = GenerateGaussian(30, 6, 1.0, 2);
  const auto shares = SplitAdditive(a, 3, 8);
  Matrix gram_sum(6, 6);
  for (const auto& share : shares) gram_sum = Add(gram_sum, Gram(share));
  EXPECT_FALSE(AlmostEqual(gram_sum, Gram(a),
                           0.1 * SquaredFrobeniusNorm(a)));
}

TEST(AdditiveClusterTest, ExactProtocolIsExactAtOsndCost) {
  const Matrix a = GenerateLowRankPlusNoise(
      {.rows = 50, .cols = 10, .rank = 4, .noise_stddev = 0.1, .seed = 3});
  auto cluster = AdditiveCluster::Create(SplitAdditive(a, 4, 9), 0.1);
  ASSERT_TRUE(cluster.ok());
  auto result = RunAdditiveExact(*cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(CovarianceError(a, result->sketch), 0.0,
              1e-6 * SquaredFrobeniusNorm(a));
  EXPECT_EQ(result->comm.total_words, 4u * 50u * 10u);
}

TEST(AdditiveClusterTest, CountSketchProtocolMeetsBudget) {
  const Matrix a = GenerateZipfSpectrum(
      {.rows = 400, .cols = 16, .alpha = 0.8, .seed = 4});
  const double eps = 0.25;
  auto cluster = AdditiveCluster::Create(SplitAdditive(a, 6, 10), eps);
  ASSERT_TRUE(cluster.ok());
  int good = 0;
  for (int t = 0; t < 5; ++t) {
    auto result = RunAdditiveCountSketch(
        *cluster, {.eps = eps, .oversample = 4.0,
                   .seed = 100 + static_cast<uint64_t>(t)});
    ASSERT_TRUE(result.ok());
    // IMPORTANT: error is against the SUM, not any share.
    if (CovarianceError(a, result->sketch) <=
        eps * SquaredFrobeniusNorm(a)) {
      ++good;
    }
  }
  EXPECT_GE(good, 4);
}

TEST(AdditiveClusterTest, CountSketchCostIndependentOfN) {
  const double eps = 0.25;
  uint64_t words_small = 0, words_large = 0;
  for (const size_t n : {200u, 3200u}) {
    const Matrix a = GenerateGaussian(n, 12, 1.0, n);
    auto cluster = AdditiveCluster::Create(SplitAdditive(a, 4, 11), eps);
    ASSERT_TRUE(cluster.ok());
    auto result =
        RunAdditiveCountSketch(*cluster, {.eps = eps, .seed = 5});
    ASSERT_TRUE(result.ok());
    (n == 200u ? words_small : words_large) = result->comm.total_words;
  }
  EXPECT_EQ(words_small, words_large);
}

TEST(AdditiveClusterTest, RowPartitionIsASpecialCase) {
  // Shares with disjoint supports: both protocols still work (sanity
  // that the model generalizes row partition).
  const Matrix a = GenerateGaussian(60, 8, 1.0, 6);
  std::vector<Matrix> shares(3, Matrix(60, 8));
  for (size_t i = 0; i < 60; ++i) {
    for (size_t j = 0; j < 8; ++j) shares[i % 3](i, j) = a(i, j);
  }
  auto cluster = AdditiveCluster::Create(std::move(shares), 0.25);
  ASSERT_TRUE(cluster.ok());
  auto result =
      RunAdditiveCountSketch(*cluster, {.eps = 0.25, .seed = 12});
  ASSERT_TRUE(result.ok());
  EXPECT_LE(CovarianceError(a, result->sketch),
            0.25 * SquaredFrobeniusNorm(a));
}

}  // namespace
}  // namespace distsketch
