#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "dist/adaptive_sketch_protocol.h"
#include "dist/exact_gram_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "dist/row_sampling_protocol.h"
#include "dist/svs_protocol.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

Cluster MakeCluster(const Matrix& a, size_t s, double eps,
                    PartitionScheme scheme = PartitionScheme::kRoundRobin) {
  auto cluster = Cluster::Create(PartitionRows(a, s, scheme, 7), eps);
  DS_CHECK(cluster.ok());
  return std::move(*cluster);
}

Matrix DefaultWorkload(uint64_t seed = 1) {
  return GenerateLowRankPlusNoise({.rows = 160,
                                   .cols = 16,
                                   .rank = 4,
                                   .decay = 0.7,
                                   .top_singular_value = 40.0,
                                   .noise_stddev = 0.4,
                                   .seed = seed});
}

TEST(ExactGramProtocolTest, ZeroErrorAtSd2Cost) {
  const Matrix a = DefaultWorkload();
  Cluster cluster = MakeCluster(a, 4, 0.1);
  ExactGramProtocol protocol;
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(CovarianceError(a, result->sketch), 0.0,
              1e-6 * SquaredFrobeniusNorm(a));
  // s * d(d+1)/2 words, one round.
  EXPECT_EQ(result->comm.total_words, 4u * (16u * 17u / 2u));
  EXPECT_EQ(result->comm.num_rounds, 1);
}

TEST(FdMergeProtocolTest, Theorem2GuaranteeAndCost) {
  const Matrix a = DefaultWorkload(2);
  const double eps = 0.4;
  const size_t k = 3;
  Cluster cluster = MakeCluster(a, 4, eps);
  FdMergeProtocol protocol({.eps = eps, .k = k});
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());
  // Merged-sketch guarantee certified at 2*eps (merge of sketches).
  EXPECT_TRUE(IsEpsKSketch(a, result->sketch, 2.0 * eps, k));
  // Cost <= s * l * d with l = k + ceil(k/eps).
  const uint64_t l = k + 8;
  EXPECT_LE(result->comm.total_words, 4u * l * 16u);
  EXPECT_GT(result->comm.total_words, 0u);
  EXPECT_EQ(result->comm.num_rounds, 1);
  EXPECT_LE(result->sketch_rows, l);
}

TEST(FdMergeProtocolTest, EpsZeroVariant) {
  const Matrix a = GenerateSignMatrix(120, 12, 3);
  const double eps = 0.25;
  Cluster cluster = MakeCluster(a, 3, eps);
  FdMergeProtocol protocol({.eps = eps, .k = 0});
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(CovarianceError(a, result->sketch),
            2.0 * eps * SquaredFrobeniusNorm(a));
}

TEST(FdMergeProtocolTest, QuantizedVariantMetersBitsAndKeepsGuarantee) {
  const Matrix a = DefaultWorkload(4);
  const double eps = 0.4;
  Cluster cluster = MakeCluster(a, 4, eps);
  FdMergeProtocol plain({.eps = eps, .k = 3, .quantize = false});
  FdMergeProtocol quant({.eps = eps, .k = 3, .quantize = true});
  auto pr = plain.Run(cluster);
  auto qr = quant.Run(cluster);
  ASSERT_TRUE(pr.ok());
  ASSERT_TRUE(qr.ok());
  EXPECT_TRUE(IsEpsKSketch(a, qr->sketch, 2.0 * eps, 3));
  // Quantized payloads report exact bits, which must not exceed the
  // default word encoding by much and are typically smaller.
  EXPECT_GT(qr->comm.total_bits, 0u);
  EXPECT_LE(qr->comm.total_bits, pr->comm.total_bits * 2);
}

TEST(RowSamplingProtocolTest, ErrorBoundAndCost) {
  const Matrix a = GenerateZipfSpectrum(
      {.rows = 200, .cols = 12, .alpha = 0.6, .seed = 5});
  const double eps = 0.5;
  Cluster cluster = MakeCluster(a, 5, eps);
  RowSamplingProtocol protocol(
      {.eps = eps, .oversample = 4.0, .seed = 11});
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(CovarianceError(a, result->sketch),
            eps * SquaredFrobeniusNorm(a));
  // t = ceil(4/eps^2) = 16 rows of d plus O(s) control words.
  const uint64_t t = 16;
  EXPECT_LE(result->comm.total_words, t * 12 + 3 * 5 + 5);
  EXPECT_EQ(result->comm.num_rounds, 3);
}

TEST(RowSamplingProtocolTest, AllZeroInputYieldsEmptySketch) {
  std::vector<Matrix> parts;
  parts.push_back(Matrix(5, 4));
  parts.push_back(Matrix(5, 4));
  auto cluster = Cluster::Create(std::move(parts), 0.5);
  ASSERT_TRUE(cluster.ok());
  RowSamplingProtocol protocol({.eps = 0.5});
  auto result = protocol.Run(*cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sketch.rows(), 0u);
}

class SvsProtocolTest
    : public ::testing::TestWithParam<SamplingFunctionKind> {};

TEST_P(SvsProtocolTest, ErrorWithinTheorem6Bound) {
  const Matrix a = DefaultWorkload(6);
  const double alpha = 0.1;
  Cluster cluster = MakeCluster(a, 6, alpha);
  SvsProtocol protocol(
      {.alpha = alpha, .delta = 0.05, .kind = GetParam(), .seed = 13});
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(CovarianceError(a, result->sketch),
            4.0 * alpha * SquaredFrobeniusNorm(a));
  EXPECT_LE(FrobeniusNorm(result->sketch), 2.0 * FrobeniusNorm(a));
  EXPECT_EQ(result->comm.num_rounds, 3);
}

INSTANTIATE_TEST_SUITE_P(Kinds, SvsProtocolTest,
                         ::testing::Values(SamplingFunctionKind::kLinear,
                                           SamplingFunctionKind::kQuadratic));

TEST(SvsProtocolTest, BeatsFdCommunicationAtLargeS) {
  // The headline separation: for many servers and the (alpha,0) error,
  // SVS should communicate less than deterministic FD-merge.
  const size_t s = 32;
  const double alpha = 0.15;
  const Matrix a = GenerateZipfSpectrum(
      {.rows = 640, .cols = 24, .alpha = 1.0, .seed = 7});
  Cluster cluster = MakeCluster(a, s, alpha);

  FdMergeProtocol fd({.eps = alpha, .k = 0});
  auto fd_result = fd.Run(cluster);
  ASSERT_TRUE(fd_result.ok());

  SvsProtocol svs({.alpha = alpha, .delta = 0.1, .seed = 17});
  auto svs_result = svs.Run(cluster);
  ASSERT_TRUE(svs_result.ok());

  EXPECT_LT(svs_result->comm.total_words, fd_result->comm.total_words);
  // And both meet the error target.
  EXPECT_LE(CovarianceError(a, svs_result->sketch),
            4.0 * alpha * SquaredFrobeniusNorm(a));
}

TEST(AdaptiveSketchProtocolTest, Theorem7GuaranteeAndRounds) {
  const Matrix a = DefaultWorkload(8);
  const double eps = 0.3;
  const size_t k = 3;
  Cluster cluster = MakeCluster(a, 4, eps);
  AdaptiveSketchProtocol protocol(
      {.eps = eps, .k = k, .delta = 0.1, .seed = 19});
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsEpsKSketch(a, result->sketch, 3.0 * eps, k))
      << "coverr=" << CovarianceError(a, result->sketch);
  EXPECT_EQ(result->comm.num_rounds, 3);
  // Frobenius norm bound of Theorem 7.
  EXPECT_LE(SquaredFrobeniusNorm(result->sketch),
            SquaredFrobeniusNorm(a) + 8.0 * OptimalTailEnergy(a, k));
}

TEST(AdaptiveSketchProtocolTest, RecompressGivesOptimalRows) {
  const Matrix a = DefaultWorkload(9);
  const double eps = 0.3;
  const size_t k = 3;
  Cluster cluster = MakeCluster(a, 4, eps);
  AdaptiveSketchProtocol protocol(
      {.eps = eps, .k = k, .recompress = true, .seed = 21});
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->sketch_rows, k + 10u + 1u);  // k + ceil(k/eps)
  EXPECT_TRUE(IsEpsKSketch(a, result->sketch, 6.0 * eps, k));
}

TEST(AdaptiveSketchProtocolTest, QuantizedVariantKeepsGuarantee) {
  const Matrix a = DefaultWorkload(10);
  const double eps = 0.3;
  const size_t k = 3;
  Cluster cluster = MakeCluster(a, 4, eps);
  AdaptiveSketchProtocol protocol(
      {.eps = eps, .k = k, .quantize = true, .seed = 23});
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsEpsKSketch(a, result->sketch, 3.0 * eps, k));
  EXPECT_GT(result->comm.total_bits, 0u);
}

// Partition invariance: all protocols' guarantees hold regardless of how
// rows are spread (the paper assumes arbitrary partitions).
class PartitionInvarianceTest
    : public ::testing::TestWithParam<PartitionScheme> {};

TEST_P(PartitionInvarianceTest, AdaptiveGuaranteeUnderAllPartitions) {
  const Matrix a = DefaultWorkload(11);
  const double eps = 0.3;
  const size_t k = 3;
  Cluster cluster = MakeCluster(a, 5, eps, GetParam());
  AdaptiveSketchProtocol protocol({.eps = eps, .k = k, .seed = 29});
  auto result = protocol.Run(cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsEpsKSketch(a, result->sketch, 3.0 * eps, k));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PartitionInvarianceTest,
                         ::testing::Values(PartitionScheme::kRoundRobin,
                                           PartitionScheme::kContiguous,
                                           PartitionScheme::kSkewed,
                                           PartitionScheme::kRandom));

TEST(ProtocolComparisonTest, AdaptiveBeatsFdOnCommAtLargeS) {
  const size_t s = 32;
  const double eps = 0.25;
  const size_t k = 2;
  const Matrix a = GenerateLowRankPlusNoise({.rows = 640,
                                             .cols = 24,
                                             .rank = 4,
                                             .noise_stddev = 0.3,
                                             .seed = 12});
  Cluster cluster = MakeCluster(a, s, eps);
  FdMergeProtocol fd({.eps = eps, .k = k});
  AdaptiveSketchProtocol adaptive({.eps = eps, .k = k, .seed = 31});
  auto fd_result = fd.Run(cluster);
  auto ad_result = adaptive.Run(cluster);
  ASSERT_TRUE(fd_result.ok());
  ASSERT_TRUE(ad_result.ok());
  EXPECT_LT(ad_result->comm.total_words, fd_result->comm.total_words);
}

}  // namespace
}  // namespace distsketch
