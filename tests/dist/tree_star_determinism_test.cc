// Aggregation-topology semantics: for protocols whose merge is plain
// addition (exact_gram's Gram sum, countsketch's bucket sum), integer-
// valued inputs make every float addition exact, so star, tree and
// pipeline must produce *bit-identical* coordinator sketches — the
// association of an exact sum is irrelevant. FD's shrink-merge is not
// associative, so fd_merge under a tree is held to the Theorem-1
// guarantee instead. And every tree run must be bit-identical across
// thread counts, transcript digest included: the tree driver's merge
// compute fans out per level, but transfers replay in schedule order.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "dist/countsketch_protocol.h"
#include "dist/exact_gram_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

constexpr size_t kServers = 26;  // not a fanout power: ragged tree blocks

// +-1 entries: every partial sum any topology can form is an exactly
// representable integer, so addition-based merges are associative in
// floating point too.
Matrix SignData() { return GenerateSignMatrix(130, 9, /*seed=*/21); }

Cluster MakeCluster(const Matrix& a) {
  auto cluster = Cluster::Create(
      PartitionRows(a, kServers, PartitionScheme::kRoundRobin), 0.2);
  DS_CHECK(cluster.ok());
  return std::move(*cluster);
}

std::vector<MergeTopologyOptions> AllTopologies() {
  return {MergeTopologyOptions::Star(), MergeTopologyOptions::Tree(2),
          MergeTopologyOptions::Tree(8), MergeTopologyOptions::Pipeline()};
}

class TreeStarDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = ThreadPool::GlobalThreads(); }
  void TearDown() override { ThreadPool::SetGlobalThreads(saved_threads_); }
  size_t saved_threads_ = 1;
};

TEST_F(TreeStarDeterminismTest, ExactGramBitIdenticalAcrossTopologies) {
  const Matrix a = SignData();
  Matrix star_sketch;
  for (const MergeTopologyOptions& topo : AllTopologies()) {
    Cluster cluster = MakeCluster(a);
    ExactGramProtocol protocol({.topology = topo});
    auto result = protocol.Run(cluster);
    ASSERT_TRUE(result.ok());
    if (topo.is_star()) {
      star_sketch = std::move(result->sketch);
      continue;
    }
    SCOPED_TRACE(std::string(TopologyKindName(topo.kind)));
    EXPECT_TRUE(result->sketch == star_sketch)
        << "additive merge must not depend on association";
    // Total words are topology-invariant: every server still sends
    // exactly one upper-triangle uplink.
    EXPECT_EQ(result->comm.num_rounds, 1);
  }
}

TEST_F(TreeStarDeterminismTest, CountSketchBitIdenticalAcrossTopologies) {
  const Matrix a = SignData();
  Matrix star_sketch;
  uint64_t star_words = 0;
  for (const MergeTopologyOptions& topo : AllTopologies()) {
    Cluster cluster = MakeCluster(a);
    CountSketchProtocol protocol(
        {.eps = 0.35, .oversample = 2.0, .seed = 99, .topology = topo});
    auto result = protocol.Run(cluster);
    ASSERT_TRUE(result.ok());
    if (topo.is_star()) {
      star_sketch = std::move(result->sketch);
      star_words = result->comm.total_words;
      continue;
    }
    SCOPED_TRACE(std::string(TopologyKindName(topo.kind)));
    EXPECT_TRUE(result->sketch == star_sketch);
    // The uplink words match the star exactly (one m-by-d message per
    // server); only the seed downlink fan-out differs, and a tree's is
    // never larger than the star's s-message broadcast.
    EXPECT_LE(result->comm.total_words, star_words);
  }
}

TEST_F(TreeStarDeterminismTest, FdMergeTreeMeetsTheTheorem1Guarantee) {
  const Matrix a = GenerateLowRankPlusNoise({.rows = 260,
                                             .cols = 12,
                                             .rank = 4,
                                             .decay = 0.6,
                                             .top_singular_value = 25.0,
                                             .noise_stddev = 0.4,
                                             .seed = 3});
  const double eps = 0.25;
  const double budget = eps * SquaredFrobeniusNorm(a);
  for (const MergeTopologyOptions& topo : AllTopologies()) {
    Cluster cluster = MakeCluster(a);
    FdMergeProtocol protocol({.eps = eps, .k = 0, .topology = topo});
    auto result = protocol.Run(cluster);
    ASSERT_TRUE(result.ok());
    SCOPED_TRACE(std::string(TopologyKindName(topo.kind)));
    // Shrink-merging along any topology preserves the combined FD
    // guarantee (mergeable-summaries property).
    EXPECT_LE(CovarianceError(a, result->sketch), budget * (1.0 + 1e-9));
  }
}

TEST_F(TreeStarDeterminismTest, TreeRunsBitIdenticalAcrossThreadCounts) {
  const Matrix a = SignData();
  struct Case {
    std::string name;
    std::function<std::unique_ptr<SketchProtocol>()> make;
  };
  const MergeTopologyOptions tree = MergeTopologyOptions::Tree(3);
  std::vector<Case> cases;
  cases.push_back({"fd_merge", [&] {
                     return std::make_unique<FdMergeProtocol>(
                         FdMergeOptions{.eps = 0.3, .k = 0, .topology = tree});
                   }});
  cases.push_back({"exact_gram", [&] {
                     return std::make_unique<ExactGramProtocol>(
                         ExactGramOptions{.topology = tree});
                   }});
  cases.push_back({"countsketch", [&] {
                     return std::make_unique<CountSketchProtocol>(
                         CountSketchProtocolOptions{
                             .eps = 0.35, .oversample = 2.0, .seed = 7,
                             .topology = tree});
                   }});
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    ThreadPool::SetGlobalThreads(1);
    Cluster base_cluster = MakeCluster(a);
    auto base = c.make()->Run(base_cluster);
    ASSERT_TRUE(base.ok());
    const uint64_t base_digest =
        TranscriptDigest(base_cluster.log(), base_cluster.faults());
    for (const size_t threads : {2u, 8u}) {
      ThreadPool::SetGlobalThreads(threads);
      Cluster cluster = MakeCluster(a);
      auto got = c.make()->Run(cluster);
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(got->sketch == base->sketch)
          << "threads=" << threads << ": sketch bits differ";
      EXPECT_EQ(TranscriptDigest(cluster.log(), cluster.faults()),
                base_digest)
          << "threads=" << threads << ": wire transcript differs";
      EXPECT_EQ(got->comm.total_words, base->comm.total_words);
    }
  }
}

TEST_F(TreeStarDeterminismTest, TreeCutsCoordinatorInboundWords) {
  const Matrix a = SignData();
  uint64_t star_inbound = 0;
  for (const MergeTopologyOptions& topo :
       {MergeTopologyOptions::Star(), MergeTopologyOptions::Tree(8)}) {
    Cluster cluster = MakeCluster(a);
    ExactGramProtocol protocol({.topology = topo});
    ASSERT_TRUE(protocol.Run(cluster).ok());
    const uint64_t inbound = cluster.log().WordsReceivedBy(kCoordinator);
    if (topo.is_star()) {
      star_inbound = inbound;
    } else {
      // 26 servers under fanout 8 leave at most 4 top-level heads.
      EXPECT_LE(inbound * 6, star_inbound);
    }
  }
}

}  // namespace
}  // namespace distsketch
