#include "sketch/sampling_function.h"

#include <cmath>

#include <gtest/gtest.h>

namespace distsketch {
namespace {

SamplingFunctionParams BaseParams() {
  SamplingFunctionParams p;
  p.num_servers = 16;
  p.alpha = 0.1;
  p.total_frobenius = 100.0;
  p.dim = 64;
  p.delta = 0.1;
  return p;
}

TEST(SamplingFunctionTest, ValidationRejectsBadParams) {
  auto bad = BaseParams();
  bad.alpha = 0.0;
  EXPECT_FALSE(
      MakeSamplingFunction(SamplingFunctionKind::kLinear, bad).ok());
  bad = BaseParams();
  bad.num_servers = 0;
  EXPECT_FALSE(
      MakeSamplingFunction(SamplingFunctionKind::kLinear, bad).ok());
  bad = BaseParams();
  bad.total_frobenius = -1.0;
  EXPECT_FALSE(
      MakeSamplingFunction(SamplingFunctionKind::kQuadratic, bad).ok());
  bad = BaseParams();
  bad.delta = 1.5;
  EXPECT_FALSE(
      MakeSamplingFunction(SamplingFunctionKind::kQuadratic, bad).ok());
  bad = BaseParams();
  bad.dim = 0;
  EXPECT_FALSE(
      MakeSamplingFunction(SamplingFunctionKind::kLinear, bad).ok());
}

TEST(LinearSamplingFunctionTest, MatchesTheorem5Formula) {
  const auto p = BaseParams();
  const LinearSamplingFunction g(p);
  const double expected_beta =
      std::sqrt(16.0) * std::log(64.0 / 0.1) / (0.1 * 100.0);
  EXPECT_NEAR(g.beta(), expected_beta, 1e-12);
  EXPECT_NEAR(g.Probability(1.0), std::min(expected_beta, 1.0), 1e-12);
  // Clamped at 1.
  EXPECT_DOUBLE_EQ(g.Probability(1e9), 1.0);
  // Zero at zero.
  EXPECT_DOUBLE_EQ(g.Probability(0.0), 0.0);
}

TEST(LinearSamplingFunctionTest, MonotoneNonDecreasing) {
  const LinearSamplingFunction g(BaseParams());
  double prev = 0.0;
  for (double x = 0.0; x < 10.0; x += 0.1) {
    const double v = g.Probability(x);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

TEST(QuadraticSamplingFunctionTest, MatchesTheorem6Formula) {
  const auto p = BaseParams();
  const QuadraticSamplingFunction g(p);
  const double log_term = std::log(64.0 / 0.1);
  EXPECT_NEAR(g.b(), 16.0 * log_term / (0.01 * 10000.0), 1e-12);
  EXPECT_NEAR(g.threshold(), 0.1 * 100.0 / 16.0, 1e-12);
}

TEST(QuadraticSamplingFunctionTest, DropsBelowThreshold) {
  const QuadraticSamplingFunction g(BaseParams());
  // threshold = alpha*F/s = 0.625.
  EXPECT_DOUBLE_EQ(g.Probability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(g.Probability(0.6), 0.0);
  EXPECT_GT(g.Probability(0.7), 0.0);
}

TEST(QuadraticSamplingFunctionTest, QuadraticGrowthThenClamp) {
  const QuadraticSamplingFunction g(BaseParams());
  const double x1 = 1.0, x2 = 2.0;
  const double p1 = g.Probability(x1);
  const double p2 = g.Probability(x2);
  if (p2 < 1.0) {
    EXPECT_NEAR(p2 / p1, 4.0, 1e-9);  // g ~ x^2
  }
  EXPECT_DOUBLE_EQ(g.Probability(1e12), 1.0);
}

TEST(SamplingFunctionTest, QuadraticCheaperThanLinearInExpectation) {
  // Theorem 6's point: sum_j g_quad(sigma_j^2) <= sum_j g_lin(sigma_j^2)
  // for any spectrum (g_quad(x) <= sqrt-scaled linear bound).
  const auto p = BaseParams();
  const LinearSamplingFunction lin(p);
  const QuadraticSamplingFunction quad(p);
  // Flat spectrum summing to total_frobenius.
  const size_t count = 50;
  const double each = p.total_frobenius / count;
  double cost_lin = 0.0, cost_quad = 0.0;
  for (size_t j = 0; j < count; ++j) {
    cost_lin += lin.Probability(each);
    cost_quad += quad.Probability(each);
  }
  EXPECT_LE(cost_quad, cost_lin * (1.0 + 1e-12));
}

TEST(SamplingFunctionTest, FactoryProducesRightKind) {
  auto lin = MakeSamplingFunction(SamplingFunctionKind::kLinear,
                                  BaseParams());
  auto quad = MakeSamplingFunction(SamplingFunctionKind::kQuadratic,
                                   BaseParams());
  ASSERT_TRUE(lin.ok());
  ASSERT_TRUE(quad.ok());
  EXPECT_STREQ((*lin)->Name(), "linear");
  EXPECT_STREQ((*quad)->Name(), "quadratic");
}

TEST(SamplingFunctionTest, LogTermFlooredForTinyDim) {
  // d=1, delta=0.9 would make log(d/delta) negative; the floor keeps the
  // probability valid.
  auto p = BaseParams();
  p.dim = 1;
  p.delta = 0.9;
  const LinearSamplingFunction g(p);
  EXPECT_GT(g.beta(), 0.0);
  EXPECT_GE(g.Probability(0.5), 0.0);
}

}  // namespace
}  // namespace distsketch
