#include "sketch/svs.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/svd.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

// A sampling function that keeps everything: SVS degenerates to agg(A).
class KeepAll : public SamplingFunction {
 public:
  double Probability(double) const override { return 1.0; }
  const char* Name() const override { return "keep_all"; }
};

// Keeps nothing.
class KeepNone : public SamplingFunction {
 public:
  double Probability(double) const override { return 0.0; }
  const char* Name() const override { return "keep_none"; }
};

// Constant probability p.
class KeepP : public SamplingFunction {
 public:
  explicit KeepP(double p) : p_(p) {}
  double Probability(double) const override { return p_; }
  const char* Name() const override { return "keep_p"; }

 private:
  double p_;
};

// Row-wise comparison up to sign: each aggregated-form row is sigma_j v_j^T
// and the sign of a singular vector is arbitrary, so rows produced by
// different factorization routes (Gram eigensolve vs Jacobi SVD) may be
// negated relative to each other.
void ExpectRowsEqualUpToSign(const Matrix& got, const Matrix& want,
                             double tol) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (size_t i = 0; i < got.rows(); ++i) {
    double dot = 0.0;
    for (size_t j = 0; j < got.cols(); ++j) dot += got(i, j) * want(i, j);
    const double sign = dot < 0.0 ? -1.0 : 1.0;
    for (size_t j = 0; j < got.cols(); ++j) {
      EXPECT_NEAR(sign * got(i, j), want(i, j), tol)
          << "row " << i << " col " << j;
    }
  }
}

TEST(SvsTest, EmptyInputFails) {
  KeepAll g;
  EXPECT_FALSE(Svs(Matrix(), g, 1).ok());
}

TEST(SvsTest, KeepAllIsExact) {
  const Matrix a = GenerateGaussian(20, 6, 1.0, 1);
  KeepAll g;
  auto r = Svs(a, g, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sampled, 6u);
  EXPECT_DOUBLE_EQ(r->expected_sampled, 6.0);
  // With p = 1 the rescaling is 1: B^T B = A^T A exactly.
  EXPECT_NEAR(CovarianceError(a, r->sketch), 0.0,
              1e-7 * SquaredFrobeniusNorm(a));
}

TEST(SvsTest, KeepNoneIsEmpty) {
  const Matrix a = GenerateGaussian(10, 4, 1.0, 3);
  KeepNone g;
  auto r = Svs(a, g, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sketch.rows(), 0u);
  EXPECT_EQ(r->sampled, 0u);
  EXPECT_DOUBLE_EQ(r->expected_sampled, 0.0);
}

TEST(SvsTest, UnbiasedInExpectation) {
  // Claim 3: E[B^T B] = A^T A for any g. Monte-Carlo check at p = 0.5.
  const Matrix a = GenerateGaussian(15, 4, 1.0, 5);
  const Matrix target = Gram(a);
  KeepP g(0.5);
  Matrix mean(4, 4);
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    auto r = Svs(a, g, 10000 + t);
    ASSERT_TRUE(r.ok());
    if (r->sketch.rows() > 0) mean = Add(mean, Gram(r->sketch));
  }
  mean.Scale(1.0 / trials);
  EXPECT_TRUE(AlmostEqual(mean, target, 0.12 * FrobeniusNorm(target)));
}

TEST(SvsTest, SampledCountConcentratesAroundExpectation) {
  const Matrix a = GenerateGaussian(40, 16, 1.0, 6);
  KeepP g(0.25);
  double total_sampled = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    auto r = Svs(a, g, 20000 + t);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r->expected_sampled, 4.0);
    total_sampled += static_cast<double>(r->sampled);
  }
  EXPECT_NEAR(total_sampled / trials, 4.0, 0.5);
}

TEST(SvsTest, RowsAreScaledRightSingularVectors) {
  // With p = 1, rows of the output are the aggregated form (up to the
  // arbitrary singular-vector signs — Svs may factorize via the Gram
  // route while ComputeSvd is Jacobi).
  const Matrix a = GenerateGaussian(12, 5, 1.0, 7);
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  KeepAll g;
  auto r = Svs(a, g, 8);
  ASSERT_TRUE(r.ok());
  ExpectRowsEqualUpToSign(r->sketch, svd->AggregatedForm(), 1e-8);
}

TEST(SvsTest, AggregatedFormPathSkipsSvd) {
  const Matrix a = GenerateGaussian(18, 6, 1.0, 9);
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  KeepP g(0.7);
  auto direct = SvsOnAggregatedForm(svd->AggregatedForm(), g, 31);
  auto via_svd = Svs(a, g, 31);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_svd.ok());
  // Same seed, same candidate energies in the same order -> the same rows
  // get sampled; values agree up to the arbitrary singular-vector signs
  // (direct consumes Jacobi's aggregated form, Svs may route via Gram).
  EXPECT_EQ(direct->sampled, via_svd->sampled);
  ExpectRowsEqualUpToSign(via_svd->sketch, direct->sketch, 1e-8);
}

TEST(SvsTest, DeterministicPerSeed) {
  const Matrix a = GenerateGaussian(10, 4, 1.0, 11);
  KeepP g(0.5);
  auto r1 = Svs(a, g, 77);
  auto r2 = Svs(a, g, 77);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r1->sketch == r2->sketch);
}

// Theorem 6 end-to-end at a single "server": with the quadratic function
// at alpha, coverr <= 4 alpha ||A||_F^2 w.h.p. and ||B||_F <= 2 ||A||_F.
class SvsTheorem6Test : public ::testing::TestWithParam<double> {};

TEST_P(SvsTheorem6Test, ErrorAndNormBounds) {
  const double alpha = GetParam();
  const Matrix a = GenerateZipfSpectrum(
      {.rows = 80, .cols = 24, .alpha = 0.8, .seed = 13});
  SamplingFunctionParams params;
  params.num_servers = 1;
  params.alpha = alpha;
  params.total_frobenius = SquaredFrobeniusNorm(a);
  params.dim = 24;
  params.delta = 0.05;
  const QuadraticSamplingFunction g(params);
  int error_ok = 0, norm_ok = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    auto r = Svs(a, g, 40000 + t);
    ASSERT_TRUE(r.ok());
    if (CovarianceError(a, r->sketch) <=
        4.0 * alpha * params.total_frobenius) {
      ++error_ok;
    }
    if (FrobeniusNorm(r->sketch) <= 2.0 * FrobeniusNorm(a)) ++norm_ok;
  }
  EXPECT_GE(error_ok, 9);
  EXPECT_GE(norm_ok, 9);
}

INSTANTIATE_TEST_SUITE_P(Alphas, SvsTheorem6Test,
                         ::testing::Values(0.05, 0.1, 0.25));

}  // namespace
}  // namespace distsketch
