#include "sketch/decomp.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "sketch/frequent_directions.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

TEST(DecompTest, EmptyInputFails) { EXPECT_FALSE(Decomp(Matrix(), 2).ok()); }

TEST(DecompTest, GramSplitsExactly) {
  // Lemma 6: B^T B = T^T T + R^T R.
  const Matrix b = GenerateGaussian(20, 8, 1.0, 1);
  for (size_t k : {1u, 3u, 7u}) {
    auto d = Decomp(b, k);
    ASSERT_TRUE(d.ok());
    Matrix sum(8, 8);
    if (d->head.rows() > 0) sum = Add(sum, Gram(d->head));
    if (d->tail.rows() > 0) sum = Add(sum, Gram(d->tail));
    EXPECT_TRUE(AlmostEqual(sum, Gram(b), 1e-7 * SquaredFrobeniusNorm(b)))
        << "k=" << k;
  }
}

TEST(DecompTest, TailMassIsRankKTailEnergy) {
  // ||R||_F^2 = ||B - [B]_k||_F^2.
  const Matrix b = GenerateZipfSpectrum(
      {.rows = 30, .cols = 10, .alpha = 1.0, .seed = 2});
  for (size_t k : {0u, 2u, 5u}) {
    auto d = Decomp(b, k);
    ASSERT_TRUE(d.ok());
    EXPECT_NEAR(SquaredFrobeniusNorm(d->tail), OptimalTailEnergy(b, k),
                1e-7 * SquaredFrobeniusNorm(b))
        << "k=" << k;
  }
}

TEST(DecompTest, HeadHasAtMostKRows) {
  const Matrix b = GenerateGaussian(12, 6, 1.0, 3);
  auto d = Decomp(b, 4);
  ASSERT_TRUE(d.ok());
  EXPECT_LE(d->head.rows(), 4u);
  EXPECT_LE(d->tail.rows(), 6u);
}

TEST(DecompTest, KLargerThanRankGivesEmptyTail) {
  const Matrix b = GenerateLowRankPlusNoise(
      {.rows = 20, .cols = 8, .rank = 2, .noise_stddev = 0.0, .seed = 4});
  auto d = Decomp(b, 5);
  ASSERT_TRUE(d.ok());
  // Rank 2 matrix: tail rows past the rank are numerically zero and
  // dropped.
  EXPECT_EQ(d->tail.rows(), 0u);
  EXPECT_NEAR(SquaredFrobeniusNorm(d->head), SquaredFrobeniusNorm(b),
              1e-7 * SquaredFrobeniusNorm(b));
}

TEST(DecompTest, KZeroPutsEverythingInTail) {
  const Matrix b = GenerateGaussian(10, 5, 1.0, 5);
  auto d = Decomp(b, 0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->head.rows(), 0u);
  EXPECT_NEAR(SquaredFrobeniusNorm(d->tail), SquaredFrobeniusNorm(b),
              1e-8 * SquaredFrobeniusNorm(b));
}

TEST(DecompTest, HeadRowsAreOrthogonal) {
  const Matrix b = GenerateGaussian(15, 6, 1.0, 6);
  auto d = Decomp(b, 3);
  ASSERT_TRUE(d.ok());
  const Matrix cross = MultiplyTransposeB(d->head, d->head);
  for (size_t i = 0; i < cross.rows(); ++i) {
    for (size_t j = 0; j < cross.cols(); ++j) {
      if (i != j) {
        EXPECT_NEAR(cross(i, j), 0.0, 1e-7 * SquaredFrobeniusNorm(b));
      }
    }
  }
}

TEST(DecompTest, Lemma5TailMassBoundViaFd) {
  // Lemma 5: for B = FD(A, eps, k), ||B - [B]_k||_F^2 <=
  // (1 + eps) ||A - [A]_k||_F^2. Verified through Decomp's tail.
  const double eps = 0.5;
  const size_t k = 3;
  const Matrix a = GenerateLowRankPlusNoise(
      {.rows = 120, .cols = 16, .rank = 4, .noise_stddev = 0.4, .seed = 7});
  auto fd = FrequentDirections::FromEpsK(16, eps, k);
  ASSERT_TRUE(fd.ok());
  fd->AppendRows(a);
  auto d = Decomp(fd->Sketch(), k);
  ASSERT_TRUE(d.ok());
  EXPECT_LE(SquaredFrobeniusNorm(d->tail),
            (1.0 + eps) * OptimalTailEnergy(a, k) * (1.0 + 1e-9));
}

}  // namespace
}  // namespace distsketch
