#include "sketch/fast_frequent_directions.h"

#include <tuple>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "sketch/frequent_directions.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

TEST(FastFdTest, FactoryValidation) {
  EXPECT_FALSE(FastFrequentDirections::FromEpsK(8, 0.1, 0, 1).ok());
  EXPECT_FALSE(FastFrequentDirections::FromEpsK(8, 0.0, 2, 1).ok());
  auto fd = FastFrequentDirections::FromEpsK(8, 0.5, 2, 1);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fd->sketch_size(), 6u);
}

TEST(FastFdTest, SketchSizeBounded) {
  FastFrequentDirections fd(12, 5, 7);
  fd.AppendRows(GenerateGaussian(200, 12, 1.0, 1));
  EXPECT_LE(fd.Sketch().rows(), 5u);
  EXPECT_GT(fd.shrink_count(), 0u);
}

TEST(FastFdTest, FewRowsLossless) {
  FastFrequentDirections fd(6, 8, 7);
  const Matrix a = GenerateGaussian(7, 6, 1.0, 2);
  fd.AppendRows(a);
  EXPECT_NEAR(CovarianceError(a, fd.Sketch()), 0.0,
              1e-8 * SquaredFrobeniusNorm(a));
}

TEST(FastFdTest, FrobeniusNeverGrows) {
  FastFrequentDirections fd(10, 4, 9);
  const Matrix a = GenerateGaussian(120, 10, 2.0, 3);
  fd.AppendRows(a);
  EXPECT_LE(SquaredFrobeniusNorm(fd.Sketch()),
            SquaredFrobeniusNorm(a) * (1.0 + 1e-9));
}

// The (eps, k) guarantee, certified with a 2x constant of slack for the
// randomized shrink (exact-FD tests certify at 1x; [15] proves the same
// asymptotics with adjusted constants).
class FastFdGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<double, size_t, int>> {};

TEST_P(FastFdGuaranteeTest, EpsKGuaranteeWithSlack) {
  const auto [eps, k, workload] = GetParam();
  Matrix a;
  switch (workload) {
    case 0:
      a = GenerateLowRankPlusNoise({.rows = 150,
                                    .cols = 16,
                                    .rank = 4,
                                    .noise_stddev = 0.3,
                                    .seed = 4});
      break;
    case 1:
      a = GenerateZipfSpectrum(
          {.rows = 150, .cols = 16, .alpha = 1.0, .seed = 5});
      break;
    default:
      a = GenerateSignMatrix(150, 16, 6);
      break;
  }
  auto fd = FastFrequentDirections::FromEpsK(16, eps, k, 11);
  ASSERT_TRUE(fd.ok());
  fd->AppendRows(a);
  const Matrix b = fd->Sketch();
  EXPECT_TRUE(IsEpsKSketch(a, b, 2.0 * eps, k))
      << "coverr=" << CovarianceError(a, b)
      << " budget=" << SketchErrorBudget(a, 2.0 * eps, k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FastFdGuaranteeTest,
    ::testing::Combine(::testing::Values(0.25, 0.5),
                       ::testing::Values(2, 4),
                       ::testing::Values(0, 1, 2)));

TEST(FastFdTest, TracksExactFdClosely) {
  const Matrix a = GenerateLowRankPlusNoise({.rows = 300,
                                             .cols = 20,
                                             .rank = 5,
                                             .noise_stddev = 0.4,
                                             .seed = 8});
  auto exact = FrequentDirections::FromEpsK(20, 0.4, 3);
  auto fast = FastFrequentDirections::FromEpsK(20, 0.4, 3, 13);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(fast.ok());
  exact->AppendRows(a);
  fast->AppendRows(a);
  const double err_exact = CovarianceError(a, exact->Sketch());
  const double err_fast = CovarianceError(a, fast->Sketch());
  // Same ballpark: the randomized shrink costs at most ~2x in error on
  // this workload.
  EXPECT_LE(err_fast, 2.5 * err_exact + 1e-9);
}

TEST(FastFdTest, DeterministicPerSeed) {
  const Matrix a = GenerateGaussian(100, 10, 1.0, 9);
  FastFrequentDirections f1(10, 4, 99), f2(10, 4, 99);
  f1.AppendRows(a);
  f2.AppendRows(a);
  EXPECT_TRUE(f1.Sketch() == f2.Sketch());
}

TEST(FastFdTest, UsableAfterSketch) {
  FastFrequentDirections fd(8, 4, 5);
  const Matrix a = GenerateGaussian(60, 8, 1.0, 10);
  fd.AppendRows(a.RowRange(0, 30));
  (void)fd.Sketch();
  fd.AppendRows(a.RowRange(30, 60));
  EXPECT_LE(fd.Sketch().rows(), 4u);
}

}  // namespace
}  // namespace distsketch
