#include "sketch/row_sampling.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

TEST(RowSamplingTest, FactoryValidation) {
  EXPECT_FALSE(RowSamplingSketch::FromEps(4, 0.0, 1).ok());
  EXPECT_FALSE(RowSamplingSketch::FromEps(4, 0.5, 1, -1.0).ok());
  auto s = RowSamplingSketch::FromEps(4, 0.5, 1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_samples(), 4u);  // ceil(1/0.25)
}

TEST(RowSamplingTest, EmptyStreamGivesEmptySketch) {
  RowSamplingSketch s(4, 8, 1);
  EXPECT_EQ(s.Sketch().rows(), 0u);
  EXPECT_EQ(s.total_mass(), 0.0);
}

TEST(RowSamplingTest, ZeroRowsAreIgnored) {
  RowSamplingSketch s(2, 4, 2);
  const double zero[] = {0.0, 0.0};
  const double row[] = {1.0, 2.0};
  s.Append(zero);
  s.Append(row);
  EXPECT_DOUBLE_EQ(s.total_mass(), 5.0);
  const Matrix b = s.Sketch();
  EXPECT_EQ(b.rows(), 4u);  // every reservoir holds the only nonzero row
}

TEST(RowSamplingTest, SketchHasExactlyTRows) {
  RowSamplingSketch s(6, 10, 3);
  s.AppendRows(GenerateGaussian(50, 6, 1.0, 4));
  EXPECT_EQ(s.Sketch().rows(), 10u);
}

TEST(RowSamplingTest, SingleRowInputIsRecoveredExactly) {
  // One nonzero row: p = 1, scale = 1/sqrt(t); B^T B = A^T A exactly.
  RowSamplingSketch s(3, 5, 5);
  const double row[] = {1.0, 2.0, 2.0};
  s.Append(row);
  const Matrix b = s.Sketch();
  const Matrix a{{1.0, 2.0, 2.0}};
  EXPECT_NEAR(CovarianceError(a, b), 0.0, 1e-10);
}

TEST(RowSamplingTest, UnbiasedInExpectation) {
  // Average B^T B over many independent runs approaches A^T A (Claim in
  // [10]). Use a small matrix so the Monte-Carlo variance is modest.
  const Matrix a = GenerateGaussian(12, 4, 1.0, 6);
  const Matrix target = Gram(a);
  Matrix mean(4, 4);
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    RowSamplingSketch s(4, 8, 1000 + t);
    s.AppendRows(a);
    mean = Add(mean, Gram(s.Sketch()));
  }
  mean.Scale(1.0 / trials);
  const double scale = FrobeniusNorm(target);
  EXPECT_TRUE(AlmostEqual(mean, target, 0.15 * scale))
      << "mean=\n"
      << mean.ToString() << "target=\n"
      << target.ToString();
}

TEST(RowSamplingTest, ErrorBoundHoldsTypically) {
  // coverr <= eps * ||A||_F^2 with constant probability; with oversample 4
  // failures should be rare. Require >= 8/10 successes.
  const Matrix a = GenerateZipfSpectrum(
      {.rows = 100, .cols = 10, .alpha = 0.5, .seed = 7});
  const double eps = 0.4;
  int good = 0;
  for (int t = 0; t < 10; ++t) {
    auto s = RowSamplingSketch::FromEps(10, eps, 2000 + t, /*oversample=*/4.0);
    ASSERT_TRUE(s.ok());
    s->AppendRows(a);
    if (CovarianceError(a, s->Sketch()) <=
        eps * SquaredFrobeniusNorm(a)) {
      ++good;
    }
  }
  EXPECT_GE(good, 8);
}

TEST(RowSamplingTest, DeterministicPerSeed) {
  const Matrix a = GenerateGaussian(30, 5, 1.0, 8);
  RowSamplingSketch s1(5, 6, 99), s2(5, 6, 99);
  s1.AppendRows(a);
  s2.AppendRows(a);
  EXPECT_TRUE(s1.Sketch() == s2.Sketch());
}

TEST(RowSamplingTest, HeavyRowDominatesReservoirs) {
  // One row with overwhelming mass should occupy nearly all reservoirs.
  RowSamplingSketch s(2, 20, 9);
  const double light[] = {0.01, 0.0};
  const double heavy[] = {100.0, 0.0};
  for (int i = 0; i < 10; ++i) s.Append(light);
  s.Append(heavy);
  size_t heavy_count = 0;
  for (size_t r = 0; r < 20; ++r) {
    if (s.HasSample(r) && s.SampleWeight(r) > 1.0) ++heavy_count;
  }
  EXPECT_GE(heavy_count, 18u);
}

}  // namespace
}  // namespace distsketch
