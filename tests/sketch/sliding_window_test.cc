#include "sketch/sliding_window.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

TEST(SlidingWindowTest, Validation) {
  EXPECT_FALSE(SlidingWindowSketch::Create(0, 10, 0.2).ok());
  EXPECT_FALSE(SlidingWindowSketch::Create(4, 0, 0.2).ok());
  EXPECT_FALSE(SlidingWindowSketch::Create(4, 10, 0.0).ok());
  EXPECT_FALSE(SlidingWindowSketch::Create(4, 10, 1.0).ok());
  auto sw = SlidingWindowSketch::Create(4, 10, 0.2);
  ASSERT_TRUE(sw.ok());
  const double bad_row[] = {1.0, 2.0};
  EXPECT_FALSE(sw->Append(bad_row).ok());
}

TEST(SlidingWindowTest, QueryBeforeWindowFullCoversPrefix) {
  auto sw = SlidingWindowSketch::Create(6, 100, 0.3);
  ASSERT_TRUE(sw.ok());
  const Matrix a = GenerateGaussian(20, 6, 1.0, 1);
  for (size_t i = 0; i < a.rows(); ++i) ASSERT_TRUE(sw->Append(a.Row(i)).ok());
  auto q = sw->Query();
  ASSERT_TRUE(q.ok());
  // 20 rows < window: the sketch covers the whole prefix within the FD
  // budget (eps/2 * ||A||_F^2 each for blocks and merge).
  EXPECT_LE(CovarianceError(a, *q),
            0.3 * SquaredFrobeniusNorm(a) * (1.0 + 1e-9));
}

// The [34]-style guarantee: coverr(window, query) <= eps * W * R^2.
class SlidingWindowGuaranteeTest : public ::testing::TestWithParam<double> {
};

TEST_P(SlidingWindowGuaranteeTest, WindowErrorBounded) {
  const double eps = GetParam();
  const size_t window = 256;
  const size_t d = 12;
  auto sw = SlidingWindowSketch::Create(d, window, eps);
  ASSERT_TRUE(sw.ok());
  // Non-stationary stream: the covariance direction rotates midway, so a
  // whole-stream sketch would be badly wrong for the window.
  const Matrix phase1 = GenerateLowRankPlusNoise({.rows = 600,
                                                  .cols = d,
                                                  .rank = 2,
                                                  .top_singular_value = 9.0,
                                                  .noise_stddev = 0.1,
                                                  .seed = 2});
  const Matrix phase2 = GenerateLowRankPlusNoise({.rows = 600,
                                                  .cols = d,
                                                  .rank = 2,
                                                  .top_singular_value = 9.0,
                                                  .noise_stddev = 0.1,
                                                  .seed = 99});
  const Matrix stream = ConcatRows(phase1, phase2);
  for (size_t i = 0; i < stream.rows(); ++i) {
    ASSERT_TRUE(sw->Append(stream.Row(i)).ok());
    if ((i + 1) % 128 == 0 && i + 1 >= window) {
      auto q = sw->Query();
      ASSERT_TRUE(q.ok());
      const Matrix window_rows = stream.RowRange(i + 1 - window, i + 1);
      const double budget = eps * static_cast<double>(window) *
                            sw->max_row_norm() * sw->max_row_norm();
      EXPECT_LE(CovarianceError(window_rows, *q), budget)
          << "at row " << i + 1;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, SlidingWindowGuaranteeTest,
                         ::testing::Values(0.1, 0.2, 0.4));

TEST(SlidingWindowTest, ForgetsOldPhase) {
  // After the stream switches subspace, a window-sized lag later the
  // query must reflect the new phase, not the old one.
  const size_t d = 10;
  const size_t window = 200;
  auto sw = SlidingWindowSketch::Create(d, window, 0.2);
  ASSERT_TRUE(sw.ok());
  const Matrix old_phase = GenerateLowRankPlusNoise(
      {.rows = 800, .cols = d, .rank = 2, .top_singular_value = 10.0,
       .noise_stddev = 0.05, .seed = 3});
  const Matrix new_phase = GenerateLowRankPlusNoise(
      {.rows = 400, .cols = d, .rank = 2, .top_singular_value = 10.0,
       .noise_stddev = 0.05, .seed = 77});
  for (size_t i = 0; i < old_phase.rows(); ++i) {
    ASSERT_TRUE(sw->Append(old_phase.Row(i)).ok());
  }
  for (size_t i = 0; i < new_phase.rows(); ++i) {
    ASSERT_TRUE(sw->Append(new_phase.Row(i)).ok());
  }
  auto q = sw->Query();
  ASSERT_TRUE(q.ok());
  const Matrix last_window =
      new_phase.RowRange(new_phase.rows() - window, new_phase.rows());
  const double err_new = CovarianceError(last_window, *q);
  const double err_old =
      CovarianceError(old_phase.RowRange(0, window), *q);
  EXPECT_LT(err_new, 0.3 * err_old);
}

TEST(SlidingWindowTest, SpaceIsBounded) {
  auto sw = SlidingWindowSketch::Create(8, 128, 0.25);
  ASSERT_TRUE(sw.ok());
  const Matrix stream = GenerateGaussian(4000, 8, 1.0, 4);
  size_t max_blocks = 0;
  for (size_t i = 0; i < stream.rows(); ++i) {
    ASSERT_TRUE(sw->Append(stream.Row(i)).ok());
    max_blocks = std::max(max_blocks, sw->num_blocks());
  }
  // ceil(W/B) + O(1) blocks with B = floor(eps*W/2) = 16 -> ~9 blocks.
  EXPECT_LE(max_blocks, 10u);
  EXPECT_EQ(sw->rows_seen(), 4000u);
}

TEST(SlidingWindowTest, TinyWindowDegradesToPerRowBlocks) {
  // eps*W/2 < 1: block size clamps to one row and everything still works.
  auto sw = SlidingWindowSketch::Create(4, 4, 0.2);
  ASSERT_TRUE(sw.ok());
  const Matrix stream = GenerateGaussian(20, 4, 1.0, 5);
  for (size_t i = 0; i < stream.rows(); ++i) {
    ASSERT_TRUE(sw->Append(stream.Row(i)).ok());
  }
  auto q = sw->Query();
  ASSERT_TRUE(q.ok());
  const Matrix window_rows = stream.RowRange(16, 20);
  const double budget =
      0.2 * 4.0 * sw->max_row_norm() * sw->max_row_norm();
  EXPECT_LE(CovarianceError(window_rows, *q), budget * (1.0 + 1e-9));
}

}  // namespace
}  // namespace distsketch
