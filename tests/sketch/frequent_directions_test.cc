#include "sketch/frequent_directions.h"

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

TEST(FrequentDirectionsTest, FactoryValidation) {
  EXPECT_FALSE(FrequentDirections::FromEpsK(8, 0.1, 0).ok());
  EXPECT_FALSE(FrequentDirections::FromEpsK(8, -0.1, 2).ok());
  EXPECT_FALSE(FrequentDirections::FromEps(8, 0.0).ok());
  auto fd = FrequentDirections::FromEpsK(8, 0.5, 2);
  ASSERT_TRUE(fd.ok());
  // l = k + ceil(k/eps) = 2 + 4.
  EXPECT_EQ(fd->sketch_size(), 6u);
  auto fd0 = FrequentDirections::FromEps(8, 0.25);
  ASSERT_TRUE(fd0.ok());
  EXPECT_EQ(fd0->sketch_size(), 5u);
}

TEST(FrequentDirectionsTest, SketchNeverExceedsSketchSize) {
  FrequentDirections fd(10, 4);
  const Matrix a = GenerateGaussian(100, 10, 1.0, 1);
  fd.AppendRows(a);
  EXPECT_LE(fd.buffer().rows(), 2u * 4u);
  const Matrix b = fd.Sketch();
  EXPECT_LE(b.rows(), 4u);
  EXPECT_EQ(fd.rows_seen(), 100u);
  EXPECT_GT(fd.shrink_count(), 0u);
}

TEST(FrequentDirectionsTest, FewRowsPassThroughLosslessly) {
  FrequentDirections fd(5, 8);
  const Matrix a = GenerateGaussian(6, 5, 1.0, 2);
  fd.AppendRows(a);
  // Fewer rows than the sketch size: coverr must be ~0.
  EXPECT_NEAR(CovarianceError(a, fd.Sketch()), 0.0,
              1e-8 * SquaredFrobeniusNorm(a));
  EXPECT_EQ(fd.total_shrinkage(), 0.0);
}

TEST(FrequentDirectionsTest, CoverrBoundedByTotalShrinkage) {
  FrequentDirections fd(12, 5);
  const Matrix a = GenerateGaussian(200, 12, 1.0, 3);
  fd.AppendRows(a);
  const Matrix b = fd.Sketch();
  // The FD invariant: coverr <= total shrinkage.
  EXPECT_LE(CovarianceError(a, b),
            fd.total_shrinkage() * (1.0 + 1e-9) + 1e-9);
}

TEST(FrequentDirectionsTest, FrobeniusNormNeverGrows) {
  FrequentDirections fd(12, 5);
  const Matrix a = GenerateGaussian(150, 12, 2.0, 4);
  fd.AppendRows(a);
  EXPECT_LE(SquaredFrobeniusNorm(fd.Sketch()),
            SquaredFrobeniusNorm(a) * (1.0 + 1e-12));
}

TEST(FrequentDirectionsTest, SketchIsSpectrallyDominatd) {
  // B^T B <= A^T A as quadratic forms: coverr equals the one-sided
  // deficit, and ||Bx||^2 <= ||Ax||^2 for random probes.
  FrequentDirections fd(8, 4);
  const Matrix a = GenerateGaussian(80, 8, 1.0, 5);
  fd.AppendRows(a);
  const Matrix b = fd.Sketch();
  Rng rng(17);
  for (int t = 0; t < 20; ++t) {
    std::vector<double> x(8);
    for (auto& v : x) v = rng.NextGaussian();
    EXPECT_LE(SquaredNorm2(MatVec(b, x)),
              SquaredNorm2(MatVec(a, x)) * (1.0 + 1e-9));
  }
}

// Theorem 1 sweep: the (eps, k) guarantee over workloads and parameters.
class FdGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<double, size_t, int>> {};

TEST_P(FdGuaranteeTest, EpsKGuaranteeHolds) {
  const auto [eps, k, workload] = GetParam();
  Matrix a;
  switch (workload) {
    case 0:
      a = GenerateLowRankPlusNoise({.rows = 120,
                                    .cols = 16,
                                    .rank = 4,
                                    .noise_stddev = 0.3,
                                    .seed = 6});
      break;
    case 1:
      a = GenerateZipfSpectrum(
          {.rows = 120, .cols = 16, .alpha = 1.0, .seed = 7});
      break;
    default:
      a = GenerateSignMatrix(120, 16, 8);
      break;
  }
  auto fd = FrequentDirections::FromEpsK(16, eps, k);
  ASSERT_TRUE(fd.ok());
  fd->AppendRows(a);
  const Matrix b = fd->Sketch();
  EXPECT_TRUE(IsEpsKSketch(a, b, eps, k))
      << "coverr=" << CovarianceError(a, b)
      << " budget=" << SketchErrorBudget(a, eps, k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FdGuaranteeTest,
    ::testing::Combine(::testing::Values(0.2, 0.5, 1.0),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(0, 1, 2)));

// Mergeability [1]: feeding local sketches through another FD preserves
// the guarantee for the union.
class FdMergeabilityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FdMergeabilityTest, MergedSketchKeepsGuarantee) {
  const size_t num_parts = GetParam();
  const double eps = 0.4;
  const size_t k = 2;
  const Matrix a = GenerateLowRankPlusNoise({.rows = 160,
                                             .cols = 12,
                                             .rank = 3,
                                             .noise_stddev = 0.25,
                                             .seed = 9});
  const auto parts =
      PartitionRows(a, num_parts, PartitionScheme::kRoundRobin);
  auto merged = FrequentDirections::FromEpsK(12, eps, k);
  ASSERT_TRUE(merged.ok());
  for (const auto& part : parts) {
    auto local = FrequentDirections::FromEpsK(12, eps, k);
    ASSERT_TRUE(local.ok());
    local->AppendRows(part);
    merged->Merge(*local);
  }
  // The distributed-merge guarantee has the same form with a constant
  // blowup (merging sketches of sketches); certify at 2*eps.
  EXPECT_TRUE(IsEpsKSketch(a, merged->Sketch(), 2.0 * eps, k));
}

INSTANTIATE_TEST_SUITE_P(Parts, FdMergeabilityTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(FrequentDirectionsTest, MergeRequiresMatchingDim) {
  FrequentDirections a(4, 2);
  FrequentDirections b(4, 3);
  const Matrix rows = GenerateGaussian(10, 4, 1.0, 10);
  b.AppendRows(rows);
  a.Merge(b);  // different sketch_size is fine
  EXPECT_GT(a.rows_seen(), 0u);
}

TEST(FrequentDirectionsTest, SketchUsableAfterFinish) {
  FrequentDirections fd(6, 3);
  const Matrix a = GenerateGaussian(30, 6, 1.0, 11);
  fd.AppendRows(a.RowRange(0, 15));
  (void)fd.Sketch();
  fd.AppendRows(a.RowRange(15, 30));
  const Matrix b = fd.Sketch();
  // Still a valid sketch of the whole stream (guarantee with l=3, k=1:
  // coverr <= ||A-[A]_1||_F^2 / 2).
  EXPECT_LE(CovarianceError(a, b),
            OptimalTailEnergy(a, 1) / 2.0 * (1.0 + 1e-9));
}

}  // namespace
}  // namespace distsketch
