// Serialize -> deserialize -> continue streaming must be bit-identical
// to an uninterrupted run, at several cut points, for every streaming
// sketch with serializable state. This is the property that makes the
// SketchStore checkpoints trustworthy: a restore is not "approximately
// the same sketch", it is the same sketch.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "sketch/countsketch.h"
#include "sketch/row_sampling.h"
#include "sketch/sliding_window.h"
#include "wire/sketch_serde.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

void ExpectMatrixBitsEq(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      uint64_t wa, wb;
      const double da = a(r, c), db = b(r, c);
      std::memcpy(&wa, &da, 8);
      std::memcpy(&wb, &db, 8);
      ASSERT_EQ(wa, wb) << "entry (" << r << ", " << c << ")";
    }
  }
}

Matrix Workload(size_t rows, size_t cols, uint64_t seed) {
  return GenerateLowRankPlusNoise({.rows = rows,
                                   .cols = cols,
                                   .rank = 3,
                                   .decay = 0.6,
                                   .top_singular_value = 10.0,
                                   .noise_stddev = 0.3,
                                   .seed = seed});
}

const size_t kCuts[] = {0, 1, 17, 40, 79};

TEST(SketchResumeTest, CountSketchRestoreContinueBitIdentical) {
  const Matrix rows = Workload(80, 10, 5);
  CountSketchCompressor reference(8, 10, 321);
  for (size_t r = 0; r < rows.rows(); ++r) reference.Absorb(r, rows.Row(r));

  for (size_t cut : kCuts) {
    CountSketchCompressor first(8, 10, 321);
    for (size_t r = 0; r < cut; ++r) first.Absorb(r, rows.Row(r));
    const std::vector<uint8_t> blob = wire::SerializeSketch(first);
    auto compact = wire::CompactSketch::Wrap(blob.data(), blob.size());
    ASSERT_TRUE(compact.ok()) << compact.status().message();
    auto second = compact->ToCountSketch();
    ASSERT_TRUE(second.ok()) << second.status().message();
    for (size_t r = cut; r < rows.rows(); ++r) second->Absorb(r, rows.Row(r));
    ExpectMatrixBitsEq(second->compressed(), reference.compressed());
  }
}

TEST(SketchResumeTest, SlidingWindowRestoreContinueBitIdentical) {
  const Matrix rows = Workload(80, 6, 6);
  auto make = [] { return SlidingWindowSketch::Create(6, 20, 0.5); };
  auto reference = make();
  ASSERT_TRUE(reference.ok());
  for (size_t r = 0; r < rows.rows(); ++r) {
    ASSERT_TRUE(reference->Append(rows.Row(r)).ok());
  }
  auto reference_query = reference->Query();
  ASSERT_TRUE(reference_query.ok());

  for (size_t cut : kCuts) {
    auto first = make();
    ASSERT_TRUE(first.ok());
    for (size_t r = 0; r < cut; ++r) {
      ASSERT_TRUE(first->Append(rows.Row(r)).ok());
    }
    const std::vector<uint8_t> blob = wire::SerializeSketch(*first);
    auto compact = wire::CompactSketch::Wrap(blob.data(), blob.size());
    ASSERT_TRUE(compact.ok()) << compact.status().message();
    auto second = compact->ToSlidingWindow();
    ASSERT_TRUE(second.ok()) << second.status().message();
    for (size_t r = cut; r < rows.rows(); ++r) {
      ASSERT_TRUE(second->Append(rows.Row(r)).ok());
    }
    EXPECT_EQ(second->rows_seen(), reference->rows_seen());
    EXPECT_EQ(second->num_blocks(), reference->num_blocks());
    auto resumed_query = second->Query();
    ASSERT_TRUE(resumed_query.ok());
    ExpectMatrixBitsEq(*resumed_query, *reference_query);
  }
}

TEST(SketchResumeTest, RowSamplingRestoreContinueBitIdentical) {
  const Matrix rows = Workload(80, 8, 7);
  RowSamplingSketch reference(8, 5, 909);
  for (size_t r = 0; r < rows.rows(); ++r) reference.Append(rows.Row(r));

  for (size_t cut : kCuts) {
    RowSamplingSketch first(8, 5, 909);
    for (size_t r = 0; r < cut; ++r) first.Append(rows.Row(r));
    const std::vector<uint8_t> blob = wire::SerializeSketch(first);
    auto compact = wire::CompactSketch::Wrap(blob.data(), blob.size());
    ASSERT_TRUE(compact.ok()) << compact.status().message();
    auto second = compact->ToRowSampling();
    ASSERT_TRUE(second.ok()) << second.status().message();
    for (size_t r = cut; r < rows.rows(); ++r) second->Append(rows.Row(r));
    // The reservoir decisions after the cut consume the restored RNG
    // stream from its exact saved position, so every reservoir matches.
    EXPECT_EQ(second->total_mass(), reference.total_mass());
    ExpectMatrixBitsEq(second->Sketch(), reference.Sketch());
  }
}

}  // namespace
}  // namespace distsketch
