#include "sketch/countsketch.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

TEST(CountSketchTest, Validation) {
  EXPECT_FALSE(CountSketchCompressor::FromEps(4, 0.0, 1).ok());
  EXPECT_FALSE(CountSketchCompressor::FromEps(4, 0.2, 1, -1.0).ok());
  auto c = CountSketchCompressor::FromEps(4, 0.5, 1);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->buckets(), 16u);  // ceil(4 / 0.25)
}

TEST(CountSketchTest, HashIsDeterministicAndSeedDependent) {
  CountSketchCompressor a(32, 4, 7), b(32, 4, 7), c(32, 4, 8);
  size_t bucket_a, bucket_b, bucket_c;
  double sign_a, sign_b, sign_c;
  int differs = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    a.Hash(i, &bucket_a, &sign_a);
    b.Hash(i, &bucket_b, &sign_b);
    c.Hash(i, &bucket_c, &sign_c);
    EXPECT_EQ(bucket_a, bucket_b);
    EXPECT_EQ(sign_a, sign_b);
    if (bucket_a != bucket_c || sign_a != sign_c) ++differs;
  }
  EXPECT_GT(differs, 32);
}

TEST(CountSketchTest, LinearityAcrossAdditiveShares) {
  // The key property: compressing shares separately and summing equals
  // compressing the sum.
  const Matrix a = GenerateGaussian(50, 6, 1.0, 1);
  const Matrix b = GenerateGaussian(50, 6, 1.0, 2);
  const Matrix sum = Add(a, b);
  CountSketchCompressor ca(16, 6, 9), cb(16, 6, 9), csum(16, 6, 9);
  for (size_t i = 0; i < 50; ++i) {
    ca.Absorb(i, a.Row(i));
    cb.Absorb(i, b.Row(i));
    csum.Absorb(i, sum.Row(i));
  }
  const Matrix summed = Add(ca.compressed(), cb.compressed());
  EXPECT_TRUE(AlmostEqual(summed, csum.compressed(), 1e-12));
}

TEST(CountSketchTest, GramUnbiasedOverSeeds) {
  // E_S[(SA)^T (SA)] = A^T A: average over many seeds.
  const Matrix a = GenerateGaussian(40, 5, 1.0, 3);
  const Matrix target = Gram(a);
  Matrix mean(5, 5);
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    CountSketchCompressor c(8, 5, 1000 + t);
    for (size_t i = 0; i < a.rows(); ++i) c.Absorb(i, a.Row(i));
    mean = Add(mean, Gram(c.compressed()));
  }
  mean.Scale(1.0 / trials);
  EXPECT_TRUE(AlmostEqual(mean, target, 0.15 * FrobeniusNorm(target)));
}

TEST(CountSketchTest, CovarianceErrorWithinBudgetTypically) {
  const Matrix a = GenerateZipfSpectrum(
      {.rows = 300, .cols = 12, .alpha = 0.7, .seed = 4});
  const double eps = 0.25;
  int good = 0;
  for (int t = 0; t < 10; ++t) {
    auto c = CountSketchCompressor::FromEps(12, eps, 2000 + t);
    ASSERT_TRUE(c.ok());
    for (size_t i = 0; i < a.rows(); ++i) c->Absorb(i, a.Row(i));
    if (CovarianceError(a, c->compressed()) <=
        eps * SquaredFrobeniusNorm(a)) {
      ++good;
    }
  }
  EXPECT_GE(good, 8);
}

TEST(CountSketchTest, CompressionIsLossyButNormPreservingOnAverage) {
  const Matrix a = GenerateGaussian(200, 8, 1.0, 5);
  auto c = CountSketchCompressor::FromEps(8, 0.3, 6);
  ASSERT_TRUE(c.ok());
  for (size_t i = 0; i < a.rows(); ++i) c->Absorb(i, a.Row(i));
  // ||SA||_F^2 concentrates around ||A||_F^2.
  EXPECT_NEAR(SquaredFrobeniusNorm(c->compressed()),
              SquaredFrobeniusNorm(a), 0.35 * SquaredFrobeniusNorm(a));
}

}  // namespace
}  // namespace distsketch
