// Numerical verification of the building blocks of Theorem 4 (the Matrix
// Bernstein analysis of SVS): Claims 3, 4, 5 and the resulting
// concentration, checked by Monte Carlo over the actual sampling
// procedure rather than re-deriving the algebra.

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "linalg/spectral.h"
#include "linalg/svd.h"
#include "sketch/error_metrics.h"
#include "sketch/svs.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

// Fixed sampling probability p, like the proofs use a generic g.
class ConstG : public SamplingFunction {
 public:
  explicit ConstG(double p) : p_(p) {}
  double Probability(double) const override { return p_; }
  const char* Name() const override { return "const"; }

 private:
  double p_;
};

class Theorem4Test : public ::testing::TestWithParam<double> {};

// Claim 3: E[B^T B] = A^T A, at the matrix level.
TEST_P(Theorem4Test, Claim3Unbiasedness) {
  const double p = GetParam();
  const Matrix a = GenerateGaussian(20, 5, 1.0, 1);
  const Matrix target = Gram(a);
  const ConstG g(p);
  Matrix mean(5, 5);
  const int trials = 800;
  for (int t = 0; t < trials; ++t) {
    auto r = Svs(a, g, 5000 + t);
    ASSERT_TRUE(r.ok());
    if (r->sketch.rows() > 0) mean = Add(mean, Gram(r->sketch));
  }
  mean.Scale(1.0 / trials);
  // Monte-Carlo noise scales like 1/sqrt(trials); allow a generous band.
  EXPECT_TRUE(AlmostEqual(mean, target, 0.2 * FrobeniusNorm(target)))
      << "p=" << p;
}

// Claim 4: lambda_max(B^T B - A^T A) <= max_j sigma_j^2 / g(sigma_j^2),
// for every realization (an almost-sure bound, so check every trial).
TEST_P(Theorem4Test, Claim4AlmostSureBound) {
  const double p = GetParam();
  const Matrix a = GenerateGaussian(15, 4, 1.0, 2);
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  const double sigma_max2 =
      svd->singular_values[0] * svd->singular_values[0];
  const double bound = sigma_max2 / p;
  const ConstG g(p);
  const Matrix gram_a = Gram(a);
  for (int t = 0; t < 50; ++t) {
    auto r = Svs(a, g, 6000 + t);
    ASSERT_TRUE(r.ok());
    const Matrix gram_b =
        r->sketch.rows() > 0 ? Gram(r->sketch) : Matrix(4, 4);
    // lambda_max of (B^T B - A^T A): bounded by the Claim 4 quantity.
    auto eig = ComputeSymmetricEigen(Subtract(gram_b, gram_a));
    ASSERT_TRUE(eig.ok());
    EXPECT_LE(eig->eigenvalues[0], bound * (1.0 + 1e-9));
  }
}

// Claim 5: || E[(B^T B - A^T A)^2] ||_2 = max_j sigma_j^4 (1-g)/g.
TEST_P(Theorem4Test, Claim5VarianceFormula) {
  const double p = GetParam();
  const Matrix a = GenerateGaussian(18, 4, 1.0, 3);
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  double expected = 0.0;
  for (const double s : svd->singular_values) {
    expected = std::max(expected, s * s * s * s * (1.0 - p) / p);
  }
  const ConstG g(p);
  const Matrix gram_a = Gram(a);
  Matrix second_moment(4, 4);
  const int trials = 1500;
  for (int t = 0; t < trials; ++t) {
    auto r = Svs(a, g, 7000 + t);
    ASSERT_TRUE(r.ok());
    const Matrix diff = Subtract(
        r->sketch.rows() > 0 ? Gram(r->sketch) : Matrix(4, 4), gram_a);
    second_moment = Add(second_moment, Multiply(diff, diff));
  }
  second_moment.Scale(1.0 / trials);
  const double measured = SymmetricSpectralNormExact(second_moment);
  EXPECT_NEAR(measured, expected, 0.25 * expected) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Probabilities, Theorem4Test,
                         ::testing::Values(0.3, 0.5, 0.8));

// The concentration itself: across servers, deviations behave like the
// Bernstein tail — the observed error at the Theorem 6 operating point
// stays below the analytic t with the predicted probability.
TEST(Theorem4ConcentrationTest, DistributedDeviationsConcentrate) {
  const size_t s = 8;
  const double alpha = 0.15;
  const Matrix a = GenerateZipfSpectrum(
      {.rows = 400, .cols = 16, .alpha = 0.9, .seed = 4});
  SamplingFunctionParams params;
  params.num_servers = s;
  params.alpha = alpha;
  params.total_frobenius = SquaredFrobeniusNorm(a);
  params.dim = 16;
  params.delta = 0.1;
  const QuadraticSamplingFunction g(params);

  const size_t rows_per = a.rows() / s;
  int within = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    Matrix b(0, 16);
    for (size_t i = 0; i < s; ++i) {
      const Matrix local = a.RowRange(i * rows_per, (i + 1) * rows_per);
      auto r = Svs(local, g, 9000 + 31 * t + i);
      ASSERT_TRUE(r.ok());
      b.AppendRows(r->sketch);
    }
    if (CovarianceError(a, b) <= 4.0 * alpha * params.total_frobenius) {
      ++within;
    }
  }
  // Theorem 6: failure probability <= delta = 0.1; allow 2 failures in 20.
  EXPECT_GE(within, 18);
}

}  // namespace
}  // namespace distsketch
