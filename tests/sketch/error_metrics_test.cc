#include "sketch/error_metrics.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/svd.h"
#include "sketch/frequent_directions.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

TEST(ErrorMetricsTest, IdenticalMatricesHaveZeroCoverr) {
  const Matrix a = GenerateGaussian(20, 6, 1.0, 1);
  EXPECT_NEAR(CovarianceError(a, a), 0.0, 1e-9);
}

TEST(ErrorMetricsTest, EmptySketchGivesGramNorm) {
  const Matrix a = GenerateGaussian(20, 6, 1.0, 2);
  auto svals = SingularValues(a);
  ASSERT_TRUE(svals.ok());
  const double expect = (*svals)[0] * (*svals)[0];
  EXPECT_NEAR(CovarianceError(a, Matrix(0, 6)), expect, 1e-6 * expect);
}

TEST(ErrorMetricsTest, ExactAndPowerIterationAgree) {
  const Matrix a = GenerateGaussian(15, 8, 1.0, 3);
  const Matrix b = GenerateGaussian(10, 8, 1.0, 4);
  const double fast = CovarianceError(a, b, /*exact=*/false);
  const double exact = CovarianceError(a, b, /*exact=*/true);
  EXPECT_NEAR(fast, exact, 1e-6 * std::max(1.0, exact));
}

TEST(ErrorMetricsTest, RowOrderInvariance) {
  // coverr depends only on A^T A, so shuffling rows changes nothing.
  const Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const Matrix shuffled{{5, 6}, {1, 2}, {3, 4}};
  const Matrix b{{1, 1}, {2, 2}};
  EXPECT_NEAR(CovarianceError(a, b), CovarianceError(shuffled, b), 1e-10);
}

TEST(ErrorMetricsTest, ProjectionErrorZeroForPerfectBasis) {
  // A has rank 2; projecting onto its own top-2 right vectors is lossless.
  const Matrix a = GenerateLowRankPlusNoise(
      {.rows = 30, .cols = 8, .rank = 2, .noise_stddev = 0.0, .seed = 5});
  EXPECT_NEAR(ProjectionError(a, a, 2), 0.0,
              1e-8 * SquaredFrobeniusNorm(a));
}

TEST(ErrorMetricsTest, ProjectionErrorTotalForEmptyOrZeroK) {
  const Matrix a = GenerateGaussian(10, 5, 1.0, 6);
  const double total = SquaredFrobeniusNorm(a);
  EXPECT_DOUBLE_EQ(ProjectionError(a, Matrix(0, 5), 3), total);
  EXPECT_DOUBLE_EQ(ProjectionError(a, a, 0), total);
}

TEST(ErrorMetricsTest, ProjectionAtLeastOptimal) {
  const Matrix a = GenerateGaussian(25, 10, 1.0, 7);
  const Matrix b = GenerateGaussian(8, 10, 1.0, 8);
  for (size_t k : {1u, 3u, 5u}) {
    EXPECT_GE(ProjectionError(a, b, k),
              OptimalTailEnergy(a, k) - 1e-8 * SquaredFrobeniusNorm(a));
  }
}

TEST(ErrorMetricsTest, OptimalTailEnergyMatchesSvd) {
  const Matrix a = GenerateGaussian(20, 9, 1.0, 9);
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  for (size_t k : {0u, 2u, 5u, 9u}) {
    EXPECT_NEAR(OptimalTailEnergy(a, k), svd->TailEnergy(k),
                1e-8 * SquaredFrobeniusNorm(a));
  }
}

TEST(ErrorMetricsTest, SketchErrorBudgetDefinitions) {
  const Matrix a = GenerateGaussian(20, 6, 1.0, 10);
  EXPECT_DOUBLE_EQ(SketchErrorBudget(a, 0.2, 0),
                   0.2 * SquaredFrobeniusNorm(a));
  EXPECT_DOUBLE_EQ(SketchErrorBudget(a, 0.2, 2),
                   0.2 * OptimalTailEnergy(a, 2) / 2.0);
}

// Lemma 1: ||A - pi_B^k(A)||_F^2 <= ||A - [A]_k||_F^2 + 2k * coverr(A,B).
class Lemma1Test : public ::testing::TestWithParam<size_t> {};

TEST_P(Lemma1Test, HoldsForFdSketches) {
  const size_t k = GetParam();
  const Matrix a = GenerateLowRankPlusNoise(
      {.rows = 80, .cols = 16, .rank = 5, .noise_stddev = 0.3, .seed = 11});
  auto fd = FrequentDirections::FromEpsK(16, 0.5, k);
  ASSERT_TRUE(fd.ok());
  fd->AppendRows(a);
  const Matrix b = fd->Sketch();
  const double lhs = ProjectionError(a, b, k);
  const double rhs = OptimalTailEnergy(a, k) +
                     2.0 * static_cast<double>(k) * CovarianceError(a, b);
  EXPECT_LE(lhs, rhs * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Ranks, Lemma1Test, ::testing::Values(1, 2, 4, 8));

TEST(ErrorMetricsTest, IsEpsKSketchAcceptsGoodRejectsBad) {
  const Matrix a = GenerateLowRankPlusNoise(
      {.rows = 60, .cols = 12, .rank = 3, .noise_stddev = 0.2, .seed = 12});
  auto fd = FrequentDirections::FromEpsK(12, 0.3, 3);
  ASSERT_TRUE(fd.ok());
  fd->AppendRows(a);
  EXPECT_TRUE(IsEpsKSketch(a, fd->Sketch(), 0.3, 3));
  // A junk sketch fails.
  const Matrix junk = GenerateGaussian(4, 12, 10.0, 13);
  EXPECT_FALSE(IsEpsKSketch(a, junk, 0.3, 3));
}

}  // namespace
}  // namespace distsketch
