#include "sketch/adaptive_sketch.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

Matrix Workload(uint64_t seed) {
  return GenerateLowRankPlusNoise({.rows = 150,
                                   .cols = 16,
                                   .rank = 4,
                                   .decay = 0.7,
                                   .top_singular_value = 60.0,
                                   .noise_stddev = 0.4,
                                   .seed = seed});
}

TEST(AdaptiveLocalSketchTest, CreateValidation) {
  EXPECT_FALSE(AdaptiveLocalSketch::Create(0, 0.1, 2, 1).ok());
  EXPECT_FALSE(AdaptiveLocalSketch::Create(8, 0.1, 0, 1).ok());
  EXPECT_FALSE(AdaptiveLocalSketch::Create(8, 0.0, 2, 1).ok());
  EXPECT_FALSE(AdaptiveLocalSketch::Create(8, 1.5, 2, 1).ok());
  EXPECT_TRUE(AdaptiveLocalSketch::Create(8, 0.3, 2, 1).ok());
}

TEST(AdaptiveLocalSketchTest, PhaseOrderingEnforced) {
  auto local = AdaptiveLocalSketch::Create(8, 0.3, 2, 1);
  ASSERT_TRUE(local.ok());
  auto q = local->CompressWithGlobalTailMass(1.0, 1, 0.1);
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AdaptiveLocalSketchTest, TailMassIdempotent) {
  auto local = AdaptiveLocalSketch::Create(16, 0.4, 3, 2);
  ASSERT_TRUE(local.ok());
  local->AppendRows(Workload(3));
  const double m1 = local->FinishAndReportTailMass();
  const double m2 = local->FinishAndReportTailMass();
  EXPECT_DOUBLE_EQ(m1, m2);
  EXPECT_GT(m1, 0.0);
  EXPECT_LE(local->head().rows(), 3u);
}

TEST(AdaptiveLocalSketchTest, EmptyServerYieldsEmptySketch) {
  auto local = AdaptiveLocalSketch::Create(8, 0.3, 2, 4);
  ASSERT_TRUE(local.ok());
  EXPECT_DOUBLE_EQ(local->FinishAndReportTailMass(), 0.0);
  auto q = local->CompressWithGlobalTailMass(0.0, 4, 0.1);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->rows(), 0u);
}

// Theorem 7 single-machine sweep: Q is a (3 eps, k)-sketch.
class AdaptiveGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(AdaptiveGuaranteeTest, ThreeEpsGuarantee) {
  const auto [eps, k] = GetParam();
  const Matrix a = Workload(5);
  int good = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    auto q = AdaptiveSketch(a, eps, k, 500 + t);
    ASSERT_TRUE(q.ok());
    if (IsEpsKSketch(a, *q, 3.0 * eps, k)) ++good;
  }
  EXPECT_GE(good, trials - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdaptiveGuaranteeTest,
    ::testing::Combine(::testing::Values(0.2, 0.4),
                       ::testing::Values(2, 4)));

TEST(AdaptiveSketchTest, FrobeniusNormBound) {
  // ||Q||_F^2 = ||A||_F^2 + O(||A - [A]_k||_F^2) (Theorem 7).
  const Matrix a = Workload(6);
  auto q = AdaptiveSketch(a, 0.3, 3, 7);
  ASSERT_TRUE(q.ok());
  const double budget =
      SquaredFrobeniusNorm(a) + 8.0 * OptimalTailEnergy(a, 3);
  EXPECT_LE(SquaredFrobeniusNorm(*q), budget);
}

TEST(AdaptiveSketchTest, DistributedCompositionMatchesTheorem7) {
  // Full multi-server pipeline by hand: the concatenated Q must be a
  // (3 eps, k)-sketch of the union.
  const double eps = 0.3;
  const size_t k = 3;
  const size_t s = 4;
  const Matrix a = Workload(8);
  const auto parts = PartitionRows(a, s, PartitionScheme::kRoundRobin);

  std::vector<AdaptiveLocalSketch> locals;
  double global_tail = 0.0;
  for (size_t i = 0; i < s; ++i) {
    auto local = AdaptiveLocalSketch::Create(16, eps, k, 900 + i);
    ASSERT_TRUE(local.ok());
    local->AppendRows(parts[i]);
    global_tail += local->FinishAndReportTailMass();
    locals.push_back(std::move(*local));
  }
  Matrix q(0, 16);
  for (size_t i = 0; i < s; ++i) {
    auto q_i = locals[i].CompressWithGlobalTailMass(global_tail, s, 0.1);
    ASSERT_TRUE(q_i.ok());
    q.AppendRows(*q_i);
  }
  EXPECT_TRUE(IsEpsKSketch(a, q, 3.0 * eps, k))
      << "coverr=" << CovarianceError(a, q)
      << " budget=" << SketchErrorBudget(a, 3.0 * eps, k);
}

TEST(AdaptiveSketchTest, LinearFunctionAlsoWorks) {
  const Matrix a = Workload(9);
  auto local = AdaptiveLocalSketch::Create(16, 0.3, 3, 10);
  ASSERT_TRUE(local.ok());
  local->AppendRows(a);
  const double tail = local->FinishAndReportTailMass();
  auto q = local->CompressWithGlobalTailMass(
      tail, 1, 0.1, SamplingFunctionKind::kLinear);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(IsEpsKSketch(a, *q, 3.0 * 0.3, 3));
}

TEST(RecompressSketchTest, OptimalSizeAndGuaranteeKept) {
  const double eps = 0.3;
  const size_t k = 3;
  const Matrix a = Workload(11);
  auto q = AdaptiveSketch(a, eps, k, 12);
  ASSERT_TRUE(q.ok());
  auto compressed = RecompressSketch(*q, eps, k);
  ASSERT_TRUE(compressed.ok());
  // Optimal row count: k + ceil(k/eps) = 3 + 10.
  EXPECT_LE(compressed->rows(), 13u);
  // Guarantee survives with an O(1) blowup (we certify at 6 eps).
  EXPECT_TRUE(IsEpsKSketch(a, *compressed, 6.0 * eps, k));
}

TEST(RecompressSketchTest, EmptyInputFails) {
  EXPECT_FALSE(RecompressSketch(Matrix(), 0.3, 2).ok());
}

}  // namespace
}  // namespace distsketch
