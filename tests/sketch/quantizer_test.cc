#include "sketch/quantizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "sketch/frequent_directions.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

TEST(QuantizerTest, RejectsNonPositivePrecision) {
  EXPECT_FALSE(QuantizeMatrix(Matrix(2, 2), 0.0).ok());
  EXPECT_FALSE(QuantizeMatrix(Matrix(2, 2), -1.0).ok());
}

TEST(QuantizerTest, RoundsToMultiples) {
  const Matrix a{{0.26, -0.74, 1.0}};
  auto q = QuantizeMatrix(a, 0.5);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->matrix(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(q->matrix(0, 1), -0.5);
  EXPECT_DOUBLE_EQ(q->matrix(0, 2), 1.0);
}

TEST(QuantizerTest, MaxErrorAtMostHalfPrecision) {
  const Matrix a = GenerateGaussian(30, 10, 3.0, 1);
  for (double precision : {1.0, 0.1, 0.001}) {
    auto q = QuantizeMatrix(a, precision);
    ASSERT_TRUE(q.ok());
    EXPECT_LE(q->max_error, precision / 2.0 + 1e-15);
    EXPECT_TRUE(AlmostEqual(q->matrix, a, precision / 2.0 + 1e-15));
  }
}

TEST(QuantizerTest, BitAccountingIsLogOfDynamicRange) {
  const Matrix a{{1000.0, -1000.0}};
  auto coarse = QuantizeMatrix(a, 1.0);
  auto fine = QuantizeMatrix(a, 0.001);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  // Finer precision -> more bits; the difference should be ~log2(1000).
  EXPECT_GT(fine->bits_per_entry, coarse->bits_per_entry);
  EXPECT_NEAR(static_cast<double>(fine->bits_per_entry -
                                  coarse->bits_per_entry),
              std::log2(1000.0), 2.0);
  EXPECT_EQ(coarse->total_bits, coarse->bits_per_entry * 2);
}

TEST(QuantizerTest, SketchRoundingPrecisionScalesLikePaper) {
  // eps / (nd)^2: doubling n*d divides the precision by 4.
  const double p1 = SketchRoundingPrecision(100, 10, 0.1);
  const double p2 = SketchRoundingPrecision(200, 10, 0.1);
  EXPECT_NEAR(p1 / p2, 4.0, 1e-9);
  EXPECT_GT(p1, 0.0);
}

TEST(QuantizerTest, RoundingPreservesSketchGuarantee) {
  // The §3.3 claim: rounding at poly^{-1}(nd/eps) precision leaves the
  // (eps,k) guarantee intact (with slack).
  const double eps = 0.3;
  const size_t k = 3;
  const Matrix a = GenerateLowRankPlusNoise(
      {.rows = 100, .cols = 12, .rank = 4, .noise_stddev = 0.3, .seed = 2});
  auto fd = FrequentDirections::FromEpsK(12, eps, k);
  ASSERT_TRUE(fd.ok());
  fd->AppendRows(a);
  const Matrix b = fd->Sketch();
  const double precision = SketchRoundingPrecision(100, 12, eps);
  auto q = QuantizeMatrix(b, precision);
  ASSERT_TRUE(q.ok());
  // Rounded sketch still certifies at the same budget (tiny perturbation).
  EXPECT_TRUE(IsEpsKSketch(a, q->matrix, eps, k));
  // And the perturbation is within the analytic bound.
  const double perturbation =
      CovarianceError(b, q->matrix);
  EXPECT_LE(perturbation, RoundingCoverrBound(b, precision) + 1e-12);
}

TEST(QuantizerTest, CoverrBoundIsZeroForEmpty) {
  EXPECT_EQ(RoundingCoverrBound(Matrix(), 0.1), 0.0);
}

TEST(QuantizerTest, IntegerInputAtUnitPrecisionIsLossless) {
  Matrix a = GenerateSignMatrix(10, 6, 3);
  auto q = QuantizeMatrix(a, 1.0);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->matrix == a);
  EXPECT_EQ(q->max_error, 0.0);
  // +-1 entries need 2 bits (sign + 1 magnitude bit) within slack.
  EXPECT_LE(q->bits_per_entry, 3u);
}

}  // namespace
}  // namespace distsketch
