#include "sketch/quantizer.h"

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "sketch/frequent_directions.h"
#include "wire/codec.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

TEST(QuantizerTest, RejectsNonPositivePrecision) {
  EXPECT_FALSE(QuantizeMatrix(Matrix(2, 2), 0.0).ok());
  EXPECT_FALSE(QuantizeMatrix(Matrix(2, 2), -1.0).ok());
}

TEST(QuantizerTest, RoundsToMultiples) {
  const Matrix a{{0.26, -0.74, 1.0}};
  auto q = QuantizeMatrix(a, 0.5);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->matrix(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(q->matrix(0, 1), -0.5);
  EXPECT_DOUBLE_EQ(q->matrix(0, 2), 1.0);
}

TEST(QuantizerTest, MaxErrorAtMostHalfPrecision) {
  const Matrix a = GenerateGaussian(30, 10, 3.0, 1);
  for (double precision : {1.0, 0.1, 0.001}) {
    auto q = QuantizeMatrix(a, precision);
    ASSERT_TRUE(q.ok());
    EXPECT_LE(q->max_error, precision / 2.0 + 1e-15);
    EXPECT_TRUE(AlmostEqual(q->matrix, a, precision / 2.0 + 1e-15));
  }
}

TEST(QuantizerTest, BitAccountingIsLogOfDynamicRange) {
  const Matrix a{{1000.0, -1000.0}};
  auto coarse = QuantizeMatrix(a, 1.0);
  auto fine = QuantizeMatrix(a, 0.001);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  // Finer precision -> more bits; the difference should be ~log2(1000).
  EXPECT_GT(fine->bits_per_entry, coarse->bits_per_entry);
  EXPECT_NEAR(static_cast<double>(fine->bits_per_entry -
                                  coarse->bits_per_entry),
              std::log2(1000.0), 2.0);
  EXPECT_EQ(coarse->total_bits, coarse->bits_per_entry * 2);
}

TEST(QuantizerTest, SketchRoundingPrecisionScalesLikePaper) {
  // eps / (nd)^2: doubling n*d divides the precision by 4.
  const double p1 = SketchRoundingPrecision(100, 10, 0.1);
  const double p2 = SketchRoundingPrecision(200, 10, 0.1);
  EXPECT_NEAR(p1 / p2, 4.0, 1e-9);
  EXPECT_GT(p1, 0.0);
}

TEST(QuantizerTest, RoundingPreservesSketchGuarantee) {
  // The §3.3 claim: rounding at poly^{-1}(nd/eps) precision leaves the
  // (eps,k) guarantee intact (with slack).
  const double eps = 0.3;
  const size_t k = 3;
  const Matrix a = GenerateLowRankPlusNoise(
      {.rows = 100, .cols = 12, .rank = 4, .noise_stddev = 0.3, .seed = 2});
  auto fd = FrequentDirections::FromEpsK(12, eps, k);
  ASSERT_TRUE(fd.ok());
  fd->AppendRows(a);
  const Matrix b = fd->Sketch();
  const double precision = SketchRoundingPrecision(100, 12, eps);
  auto q = QuantizeMatrix(b, precision);
  ASSERT_TRUE(q.ok());
  // Rounded sketch still certifies at the same budget (tiny perturbation).
  EXPECT_TRUE(IsEpsKSketch(a, q->matrix, eps, k));
  // And the perturbation is within the analytic bound.
  const double perturbation =
      CovarianceError(b, q->matrix);
  EXPECT_LE(perturbation, RoundingCoverrBound(b, precision) + 1e-12);
}

TEST(QuantizerTest, AdversarialHalfwayEntriesHitTheLemma7Boundary) {
  // Worst case of the §3.3 rounding argument: every entry sits exactly
  // halfway between two multiples of the precision, so each one incurs
  // the maximal error precision/2 — the boundary of the Lemma 7 rounding
  // bound — and the analytic coverr bound must still hold with the
  // error at its extreme point.
  const uint64_t n = 64;
  const uint64_t d = 8;
  const double eps = 0.25;
  const double p = SketchRoundingPrecision(n, d, eps);
  Matrix a(6, d);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      const double m = static_cast<double>(i * d + j);
      const double sign = (j % 2 == 0) ? 1.0 : -1.0;
      a(i, j) = sign * (m + 0.5) * p;
    }
  }
  auto q = QuantizeMatrix(a, p);
  ASSERT_TRUE(q.ok());
  // Every entry's error is the theoretical maximum p/2 (up to the
  // roundoff of forming (m + 0.5) * p itself).
  EXPECT_NEAR(q->max_error, p / 2.0, 1e-6 * p);
  EXPECT_LE(q->max_error, p / 2.0 * (1.0 + 1e-9));
  for (size_t i = 0; i < a.size(); ++i) {
    const double rounded = q->matrix.data()[i];
    // Still a multiple of p.
    EXPECT_NEAR(std::round(rounded / p) * p, rounded, 1e-9 * p);
  }
  // The perturbation of the Gram stays inside the analytic bound even
  // with every entry at the boundary.
  EXPECT_LE(CovarianceError(a, q->matrix),
            RoundingCoverrBound(a, p) + 1e-12);
  // Bit budget stays O(log(nd/eps)): entries scale with (rows*d)*p, so
  // the integer quotients need ~log2(rows*d) magnitude bits.
  EXPECT_LE(q->bits_per_entry,
            2 + static_cast<uint64_t>(std::ceil(
                    std::log2(static_cast<double>(a.size()) + 2.0))));
}

TEST(QuantizerTest, NearBoundaryEntriesRoundToNearestNotHalfway) {
  // Entries epsilon short of the halfway point must round down (error
  // just under p/2), confirming the quantizer is a true nearest-multiple
  // rounder rather than a truncation.
  const double p = 0.01;
  Matrix a(1, 2);
  a(0, 0) = 3.0 * p + 0.499 * p;   // rounds to 3p
  a(0, 1) = -(5.0 * p + 0.501 * p);  // rounds to -6p
  auto q = QuantizeMatrix(a, p);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q->matrix(0, 0), 3.0 * p, 1e-12);
  EXPECT_NEAR(q->matrix(0, 1), -6.0 * p, 1e-12);
  EXPECT_LT(q->max_error, p / 2.0);
}

TEST(QuantizerTest, CoverrBoundIsZeroForEmpty) {
  EXPECT_EQ(RoundingCoverrBound(Matrix(), 0.1), 0.0);
}

TEST(QuantizerTest, QuotientsReconstructTheRoundedMatrix) {
  const Matrix a = GenerateGaussian(12, 7, 5.0, 9);
  const double p = 1e-3;
  auto q = QuantizeMatrix(a, p);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->quotients.size(), a.size());
  const uint64_t mag_bits = q->bits_per_entry - 1;
  for (size_t i = 0; i < a.size(); ++i) {
    const int64_t quot = q->quotients[i];
    // Entry = quotient * precision, and every magnitude fits the
    // advertised per-entry width.
    EXPECT_EQ(q->matrix.data()[i], static_cast<double>(quot) * p);
    EXPECT_LT(static_cast<uint64_t>(std::llabs(quot)),
              uint64_t{1} << mag_bits);
  }
}

TEST(QuantizerTest, WireRoundTripCoversZeroNegativeAndMaxMagnitude) {
  // The satellite-2 contract: quantize -> encode -> decode reproduces
  // the rounded entries exactly for zeros, negatives and the entry of
  // maximal magnitude, and total_bits is the real encoded width.
  const double p = 0.25;
  Matrix a(2, 3);
  a(0, 0) = 0.0;
  a(0, 1) = -0.0;
  a(0, 2) = -17.38;   // negative, large magnitude
  a(1, 0) = 17.5;     // max magnitude, exact multiple
  a(1, 1) = 0.12;     // rounds to zero
  a(1, 2) = -0.13;    // rounds to -p
  auto q = QuantizeMatrix(a, p);
  ASSERT_TRUE(q.ok());
  auto payload = wire::EncodeQuantizedPayload(*q);
  ASSERT_TRUE(payload.ok());
  auto decoded = wire::DecodeMatrixPayload(payload->data(), payload->size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(decoded->matrix.data()[i], q->matrix.data()[i]) << i;
  }
  EXPECT_EQ(decoded->matrix(1, 1), 0.0);
  EXPECT_EQ(decoded->matrix(1, 2), -p);
  // total_bits is exactly the bitstream length inside the payload:
  // payload = encoding byte + 36-byte header + ceil(total_bits/8) bytes.
  EXPECT_EQ(q->total_bits, q->bits_per_entry * a.size());
  EXPECT_EQ(payload->size(), 1 + 36 + (q->total_bits + 7) / 8);
  EXPECT_EQ(decoded->quantized_bits, q->total_bits);
}

TEST(QuantizerTest, OverflowingQuotientIsRejectedNotWrapped) {
  // A precision far below the data scale would need quotients beyond the
  // 62-bit magnitude cap; the quantizer must refuse rather than truncate.
  const Matrix a{{1e12}};
  auto q = QuantizeMatrix(a, 1e-9);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(QuantizerTest, IntegerInputAtUnitPrecisionIsLossless) {
  Matrix a = GenerateSignMatrix(10, 6, 3);
  auto q = QuantizeMatrix(a, 1.0);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->matrix == a);
  EXPECT_EQ(q->max_error, 0.0);
  // +-1 entries need 2 bits (sign + 1 magnitude bit) within slack.
  EXPECT_LE(q->bits_per_entry, 3u);
}

}  // namespace
}  // namespace distsketch
