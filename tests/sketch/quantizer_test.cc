#include "sketch/quantizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "sketch/frequent_directions.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

TEST(QuantizerTest, RejectsNonPositivePrecision) {
  EXPECT_FALSE(QuantizeMatrix(Matrix(2, 2), 0.0).ok());
  EXPECT_FALSE(QuantizeMatrix(Matrix(2, 2), -1.0).ok());
}

TEST(QuantizerTest, RoundsToMultiples) {
  const Matrix a{{0.26, -0.74, 1.0}};
  auto q = QuantizeMatrix(a, 0.5);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->matrix(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(q->matrix(0, 1), -0.5);
  EXPECT_DOUBLE_EQ(q->matrix(0, 2), 1.0);
}

TEST(QuantizerTest, MaxErrorAtMostHalfPrecision) {
  const Matrix a = GenerateGaussian(30, 10, 3.0, 1);
  for (double precision : {1.0, 0.1, 0.001}) {
    auto q = QuantizeMatrix(a, precision);
    ASSERT_TRUE(q.ok());
    EXPECT_LE(q->max_error, precision / 2.0 + 1e-15);
    EXPECT_TRUE(AlmostEqual(q->matrix, a, precision / 2.0 + 1e-15));
  }
}

TEST(QuantizerTest, BitAccountingIsLogOfDynamicRange) {
  const Matrix a{{1000.0, -1000.0}};
  auto coarse = QuantizeMatrix(a, 1.0);
  auto fine = QuantizeMatrix(a, 0.001);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  // Finer precision -> more bits; the difference should be ~log2(1000).
  EXPECT_GT(fine->bits_per_entry, coarse->bits_per_entry);
  EXPECT_NEAR(static_cast<double>(fine->bits_per_entry -
                                  coarse->bits_per_entry),
              std::log2(1000.0), 2.0);
  EXPECT_EQ(coarse->total_bits, coarse->bits_per_entry * 2);
}

TEST(QuantizerTest, SketchRoundingPrecisionScalesLikePaper) {
  // eps / (nd)^2: doubling n*d divides the precision by 4.
  const double p1 = SketchRoundingPrecision(100, 10, 0.1);
  const double p2 = SketchRoundingPrecision(200, 10, 0.1);
  EXPECT_NEAR(p1 / p2, 4.0, 1e-9);
  EXPECT_GT(p1, 0.0);
}

TEST(QuantizerTest, RoundingPreservesSketchGuarantee) {
  // The §3.3 claim: rounding at poly^{-1}(nd/eps) precision leaves the
  // (eps,k) guarantee intact (with slack).
  const double eps = 0.3;
  const size_t k = 3;
  const Matrix a = GenerateLowRankPlusNoise(
      {.rows = 100, .cols = 12, .rank = 4, .noise_stddev = 0.3, .seed = 2});
  auto fd = FrequentDirections::FromEpsK(12, eps, k);
  ASSERT_TRUE(fd.ok());
  fd->AppendRows(a);
  const Matrix b = fd->Sketch();
  const double precision = SketchRoundingPrecision(100, 12, eps);
  auto q = QuantizeMatrix(b, precision);
  ASSERT_TRUE(q.ok());
  // Rounded sketch still certifies at the same budget (tiny perturbation).
  EXPECT_TRUE(IsEpsKSketch(a, q->matrix, eps, k));
  // And the perturbation is within the analytic bound.
  const double perturbation =
      CovarianceError(b, q->matrix);
  EXPECT_LE(perturbation, RoundingCoverrBound(b, precision) + 1e-12);
}

TEST(QuantizerTest, AdversarialHalfwayEntriesHitTheLemma7Boundary) {
  // Worst case of the §3.3 rounding argument: every entry sits exactly
  // halfway between two multiples of the precision, so each one incurs
  // the maximal error precision/2 — the boundary of the Lemma 7 rounding
  // bound — and the analytic coverr bound must still hold with the
  // error at its extreme point.
  const uint64_t n = 64;
  const uint64_t d = 8;
  const double eps = 0.25;
  const double p = SketchRoundingPrecision(n, d, eps);
  Matrix a(6, d);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      const double m = static_cast<double>(i * d + j);
      const double sign = (j % 2 == 0) ? 1.0 : -1.0;
      a(i, j) = sign * (m + 0.5) * p;
    }
  }
  auto q = QuantizeMatrix(a, p);
  ASSERT_TRUE(q.ok());
  // Every entry's error is the theoretical maximum p/2 (up to the
  // roundoff of forming (m + 0.5) * p itself).
  EXPECT_NEAR(q->max_error, p / 2.0, 1e-6 * p);
  EXPECT_LE(q->max_error, p / 2.0 * (1.0 + 1e-9));
  for (size_t i = 0; i < a.size(); ++i) {
    const double rounded = q->matrix.data()[i];
    // Still a multiple of p.
    EXPECT_NEAR(std::round(rounded / p) * p, rounded, 1e-9 * p);
  }
  // The perturbation of the Gram stays inside the analytic bound even
  // with every entry at the boundary.
  EXPECT_LE(CovarianceError(a, q->matrix),
            RoundingCoverrBound(a, p) + 1e-12);
  // Bit budget stays O(log(nd/eps)): entries scale with (rows*d)*p, so
  // the integer quotients need ~log2(rows*d) magnitude bits.
  EXPECT_LE(q->bits_per_entry,
            2 + static_cast<uint64_t>(std::ceil(
                    std::log2(static_cast<double>(a.size()) + 2.0))));
}

TEST(QuantizerTest, NearBoundaryEntriesRoundToNearestNotHalfway) {
  // Entries epsilon short of the halfway point must round down (error
  // just under p/2), confirming the quantizer is a true nearest-multiple
  // rounder rather than a truncation.
  const double p = 0.01;
  Matrix a(1, 2);
  a(0, 0) = 3.0 * p + 0.499 * p;   // rounds to 3p
  a(0, 1) = -(5.0 * p + 0.501 * p);  // rounds to -6p
  auto q = QuantizeMatrix(a, p);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q->matrix(0, 0), 3.0 * p, 1e-12);
  EXPECT_NEAR(q->matrix(0, 1), -6.0 * p, 1e-12);
  EXPECT_LT(q->max_error, p / 2.0);
}

TEST(QuantizerTest, CoverrBoundIsZeroForEmpty) {
  EXPECT_EQ(RoundingCoverrBound(Matrix(), 0.1), 0.0);
}

TEST(QuantizerTest, IntegerInputAtUnitPrecisionIsLossless) {
  Matrix a = GenerateSignMatrix(10, 6, 3);
  auto q = QuantizeMatrix(a, 1.0);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->matrix == a);
  EXPECT_EQ(q->max_error, 0.0);
  // +-1 entries need 2 bits (sign + 1 magnitude bit) within slack.
  EXPECT_LE(q->bits_per_entry, 3u);
}

}  // namespace
}  // namespace distsketch
