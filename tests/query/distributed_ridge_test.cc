#include "query/distributed_ridge.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

// Builds [X | y] with y = X w* + noise and returns (data, w*).
std::pair<Matrix, std::vector<double>> MakeRegression(size_t n, size_t d,
                                                      uint64_t seed) {
  const Matrix x = GenerateLowRankPlusNoise({.rows = n,
                                             .cols = d,
                                             .rank = d / 2,
                                             .decay = 0.8,
                                             .top_singular_value = 10.0,
                                             .noise_stddev = 0.2,
                                             .seed = seed});
  Rng rng(seed + 1);
  std::vector<double> w(d);
  for (auto& v : w) v = rng.NextGaussian();
  Matrix data(n, d + 1);
  for (size_t i = 0; i < n; ++i) {
    double y = 0.1 * rng.NextGaussian();
    for (size_t j = 0; j < d; ++j) {
      data(i, j) = x(i, j);
      y += x(i, j) * w[j];
    }
    data(i, d) = y;
  }
  return {std::move(data), std::move(w)};
}

std::vector<double> ExactRidge(const Matrix& data, double lambda) {
  const size_t d = data.cols() - 1;
  Matrix x(data.rows(), d);
  std::vector<double> y(data.rows());
  for (size_t i = 0; i < data.rows(); ++i) {
    for (size_t j = 0; j < d; ++j) x(i, j) = data(i, j);
    y[i] = data(i, d);
  }
  Matrix system = Gram(x);
  for (size_t i = 0; i < d; ++i) system(i, i) += lambda;
  auto chol = CholeskyFactor::Factorize(system);
  DS_CHECK(chol.ok());
  return chol->Solve(MatTVec(x, y));
}

TEST(DistributedRidgeTest, Validation) {
  auto [data, w] = MakeRegression(50, 8, 1);
  auto cluster = Cluster::Create(
      PartitionRows(data, 4, PartitionScheme::kRoundRobin), 0.2);
  ASSERT_TRUE(cluster.ok());
  EXPECT_FALSE(DistributedRidge(*cluster, {.lambda = 0.0}).ok());
}

TEST(DistributedRidgeTest, MatchesExactRidgeWithinBound) {
  auto [data, w_true] = MakeRegression(600, 12, 2);
  const double lambda = 20.0;
  auto cluster = Cluster::Create(
      PartitionRows(data, 6, PartitionScheme::kRoundRobin), 0.1);
  ASSERT_TRUE(cluster.ok());
  auto result = DistributedRidge(
      *cluster, {.lambda = lambda, .eps = 0.1, .k = 6, .seed = 3});
  ASSERT_TRUE(result.ok());
  const std::vector<double> w_exact = ExactRidge(data, lambda);
  double diff2 = 0.0, norm2 = 0.0;
  for (size_t i = 0; i < w_exact.size(); ++i) {
    diff2 += (result->weights[i] - w_exact[i]) *
             (result->weights[i] - w_exact[i]);
    norm2 += w_exact[i] * w_exact[i];
  }
  EXPECT_LE(std::sqrt(diff2 / norm2),
            std::max(0.05, result->relative_error_bound * 2.0));
}

TEST(DistributedRidgeTest, PredictionsAreAccurate) {
  // The end metric: predictions from the sketch-fit weights track the
  // planted model.
  auto [data, w_true] = MakeRegression(800, 10, 4);
  auto cluster = Cluster::Create(
      PartitionRows(data, 8, PartitionScheme::kContiguous), 0.15);
  ASSERT_TRUE(cluster.ok());
  auto result = DistributedRidge(
      *cluster, {.lambda = 5.0, .eps = 0.15, .k = 5, .seed = 5});
  ASSERT_TRUE(result.ok());
  // R^2-style check on the training data.
  double ss_res = 0.0, ss_tot = 0.0, mean = 0.0;
  const size_t d = 10;
  for (size_t i = 0; i < data.rows(); ++i) mean += data(i, d);
  mean /= static_cast<double>(data.rows());
  for (size_t i = 0; i < data.rows(); ++i) {
    double pred = 0.0;
    for (size_t j = 0; j < d; ++j) pred += data(i, j) * result->weights[j];
    ss_res += (data(i, d) - pred) * (data(i, d) - pred);
    ss_tot += (data(i, d) - mean) * (data(i, d) - mean);
  }
  EXPECT_GT(1.0 - ss_res / ss_tot, 0.9);
}

TEST(DistributedRidgeTest, CommunicationBeatsCentralizing) {
  auto [data, w_true] = MakeRegression(4000, 16, 6);
  auto cluster = Cluster::Create(
      PartitionRows(data, 8, PartitionScheme::kRoundRobin), 0.2);
  ASSERT_TRUE(cluster.ok());
  auto result = DistributedRidge(
      *cluster, {.lambda = 10.0, .eps = 0.2, .k = 6, .seed = 7});
  ASSERT_TRUE(result.ok());
  const uint64_t centralize_words = 4000ull * 17ull;
  EXPECT_LT(result->comm.total_words, centralize_words / 4);
}

TEST(DistributedRidgeTest, AllZeroFeaturesGiveZeroWeights) {
  Matrix data(40, 5);  // 4 zero features + zero target
  auto cluster = Cluster::Create(
      PartitionRows(data, 4, PartitionScheme::kRoundRobin), 0.2);
  ASSERT_TRUE(cluster.ok());
  auto result = DistributedRidge(*cluster, {.lambda = 1.0, .k = 2});
  ASSERT_TRUE(result.ok());
  for (const double w : result->weights) EXPECT_EQ(w, 0.0);
}

}  // namespace
}  // namespace distsketch
