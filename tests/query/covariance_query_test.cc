#include "query/covariance_query.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "sketch/error_metrics.h"
#include "sketch/frequent_directions.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

class CovarianceQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = GenerateLowRankPlusNoise({.rows = 400,
                                   .cols = 16,
                                   .rank = 4,
                                   .decay = 0.7,
                                   .top_singular_value = 30.0,
                                   .noise_stddev = 0.3,
                                   .seed = 1});
    auto fd = FrequentDirections::FromEpsK(16, eps_, k_);
    ASSERT_TRUE(fd.ok());
    fd->AppendRows(a_);
    sketch_ = fd->Sketch();
    budget_ = SketchErrorBudget(a_, eps_, k_);
  }

  const double eps_ = 0.25;
  const size_t k_ = 3;
  Matrix a_;
  Matrix sketch_;
  double budget_ = 0.0;
};

TEST_F(CovarianceQueryTest, QuadraticFormWithinBound) {
  CovarianceQueryEngine engine(sketch_, budget_);
  Rng rng(2);
  for (int t = 0; t < 25; ++t) {
    std::vector<double> x(16);
    for (auto& v : x) v = rng.NextGaussian();
    const double estimated = engine.QuadraticForm(x);
    const double truth = SquaredNorm2(MatVec(a_, x));
    EXPECT_LE(std::abs(estimated - truth),
              engine.QuadraticFormErrorBound(x) * (1.0 + 1e-9));
  }
}

TEST_F(CovarianceQueryTest, DirectionEnergyOrdersTopDirections) {
  CovarianceQueryEngine engine(sketch_, budget_);
  auto pcs = engine.PrincipalComponents(3);
  ASSERT_TRUE(pcs.ok());
  std::vector<double> v0(16), v2(16);
  for (size_t i = 0; i < 16; ++i) {
    v0[i] = (*pcs)(i, 0);
    v2[i] = (*pcs)(i, 2);
  }
  EXPECT_GT(engine.DirectionEnergy(v0), engine.DirectionEnergy(v2));
}

TEST_F(CovarianceQueryTest, ResidualScoreSeparatesInOutOfSubspace) {
  CovarianceQueryEngine engine(sketch_, budget_);
  // A data row (in-subspace-ish) vs a random direction.
  auto in_score = engine.ResidualScore(a_.Row(0), k_);
  ASSERT_TRUE(in_score.ok());
  Rng rng(3);
  std::vector<double> random_dir(16);
  for (auto& v : random_dir) v = rng.NextGaussian();
  auto out_score = engine.ResidualScore(random_dir, k_);
  ASSERT_TRUE(out_score.ok());
  EXPECT_LT(*in_score, *out_score);
  // Zero vector scores zero.
  const std::vector<double> zero(16, 0.0);
  auto zero_score = engine.ResidualScore(zero, k_);
  ASSERT_TRUE(zero_score.ok());
  EXPECT_EQ(*zero_score, 0.0);
}

TEST_F(CovarianceQueryTest, RidgeSolveValidation) {
  CovarianceQueryEngine engine(sketch_, budget_);
  const std::vector<double> atb(16, 1.0);
  EXPECT_FALSE(engine.RidgeSolve(atb, 0.0).ok());
  const std::vector<double> wrong_size(5, 1.0);
  EXPECT_FALSE(engine.RidgeSolve(wrong_size, 1.0).ok());
}

TEST_F(CovarianceQueryTest, RidgeSolveTracksExactSolution) {
  // Ground truth: w* = (A^T A + lambda I)^{-1} A^T b for a planted model.
  Rng rng(4);
  std::vector<double> w_true(16);
  for (auto& v : w_true) v = rng.NextGaussian();
  std::vector<double> b = MatVec(a_, w_true);
  for (auto& v : b) v += 0.1 * rng.NextGaussian();
  const std::vector<double> atb = MatTVec(a_, b);

  const double lambda = 50.0;
  Matrix exact_system = Gram(a_);
  for (size_t i = 0; i < 16; ++i) exact_system(i, i) += lambda;
  auto chol = CholeskyFactor::Factorize(exact_system);
  ASSERT_TRUE(chol.ok());
  const std::vector<double> w_exact = chol->Solve(atb);

  CovarianceQueryEngine engine(sketch_, budget_);
  auto w_sketch = engine.RidgeSolve(atb, lambda);
  ASSERT_TRUE(w_sketch.ok());

  double diff2 = 0.0, norm2 = 0.0;
  for (size_t i = 0; i < 16; ++i) {
    diff2 += ((*w_sketch)[i] - w_exact[i]) * ((*w_sketch)[i] - w_exact[i]);
    norm2 += w_exact[i] * w_exact[i];
  }
  const double rel = std::sqrt(diff2 / norm2);
  // The analytic bound is coverr/lambda (* a condition factor); require
  // the empirical error to be well within the engine's stated bound.
  EXPECT_LE(rel, engine.RidgeRelativeErrorBound(lambda) * 2.0 + 1e-9);
}

TEST_F(CovarianceQueryTest, LargerLambdaTightensRidgeBound) {
  CovarianceQueryEngine engine(sketch_, budget_);
  EXPECT_LT(engine.RidgeRelativeErrorBound(100.0),
            engine.RidgeRelativeErrorBound(10.0));
}

}  // namespace
}  // namespace distsketch
