#include "common/rng.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace distsketch {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, Uint64BelowRespectsBound) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64Below(17), 17u);
  }
}

TEST(RngTest, Uint64BelowIsRoughlyUniform) {
  Rng rng(17);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextUint64Below(5)];
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / n, 0.2, 0.02) << value;
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, SignIsBalanced) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextSign();
    EXPECT_TRUE(v == 1.0 || v == -1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
}

TEST(RngTest, ZipfFavorsSmallRanks) {
  Rng rng(37);
  const int n = 50000;
  std::map<uint64_t, int> counts;
  for (int i = 0; i < n; ++i) ++counts[rng.NextZipf(100, 1.2)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[1], counts[10]);
  for (const auto& [value, count] : counts) {
    EXPECT_GE(value, 1u);
    EXPECT_LE(value, 100u);
    (void)count;
  }
}

TEST(RngTest, DeriveSeedDecorrelatesStreams) {
  const uint64_t s0 = Rng::DeriveSeed(99, 0);
  const uint64_t s1 = Rng::DeriveSeed(99, 1);
  EXPECT_NE(s0, s1);
  // Derivation is deterministic.
  EXPECT_EQ(s0, Rng::DeriveSeed(99, 0));
}

}  // namespace
}  // namespace distsketch
