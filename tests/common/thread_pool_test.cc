#include "common/thread_pool.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace distsketch {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ZeroAndOneIndexBatches) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const auto caller = std::this_thread::get_id();
  pool.ParallelFor(16, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  const size_t old_threads = ThreadPool::GlobalThreads();
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    std::vector<double> out =
        ParallelMap<double>(257, [](size_t i) { return 1.0 / (i + 1); });
    ASSERT_EQ(out.size(), 257u);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], 1.0 / (i + 1));
    }
  }
  ThreadPool::SetGlobalThreads(old_threads);
}

// Floating-point addition is not associative, so a completion-order
// reduction would give different bits run to run. The ordered reduce must
// reproduce the serial fold exactly, for every thread count.
TEST(ThreadPoolTest, OrderedReduceBitIdenticalAcrossThreadCounts) {
  constexpr size_t kN = 400;
  auto term = [](size_t i) {
    // Terms of wildly different magnitude make the fold order visible.
    return (i % 2 == 0 ? 1.0 : -1.0) * std::pow(10.0, double(i % 17) - 8.0);
  };
  double serial = 0.0;
  for (size_t i = 0; i < kN; ++i) serial += term(i);

  const size_t old_threads = ThreadPool::GlobalThreads();
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    for (int rep = 0; rep < 5; ++rep) {
      const double folded = ParallelOrderedReduce<double, double>(
          kN, 0.0, term,
          [](double acc, double x) { return acc + x; });
      EXPECT_EQ(folded, serial) << "threads=" << threads << " rep=" << rep;
    }
  }
  ThreadPool::SetGlobalThreads(old_threads);
}

TEST(ThreadPoolTest, UnevenWorkStillCoversAllIndices) {
  ThreadPool pool(4);
  constexpr size_t kN = 64;
  std::vector<uint64_t> out(kN, 0);
  pool.ParallelFor(kN, [&](size_t i) {
    // Index 0 does ~kN times the work of the rest; dynamic claiming must
    // still complete every index.
    uint64_t acc = 0;
    const uint64_t iters = (i == 0) ? 2000000 : 30000;
    for (uint64_t t = 0; t < iters; ++t) acc += t * (i + 1);
    out[i] = acc;
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_NE(out[i], 0u) << i;
}

}  // namespace
}  // namespace distsketch
