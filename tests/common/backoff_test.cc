#include "common/backoff.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace distsketch {
namespace {

TEST(BackoffPolicyTest, ExponentialScheduleWithCap) {
  BackoffPolicy policy{.base_delay = 1.0, .multiplier = 2.0,
                       .max_delay = 64.0};
  EXPECT_DOUBLE_EQ(policy.DelayForRetry(1), 1.0);
  EXPECT_DOUBLE_EQ(policy.DelayForRetry(2), 2.0);
  EXPECT_DOUBLE_EQ(policy.DelayForRetry(3), 4.0);
  EXPECT_DOUBLE_EQ(policy.DelayForRetry(7), 64.0);
  // Capped from retry 8 onward (2^7 = 128 > 64).
  EXPECT_DOUBLE_EQ(policy.DelayForRetry(8), 64.0);
  EXPECT_DOUBLE_EQ(policy.DelayForRetry(20), 64.0);
}

TEST(BackoffPolicyTest, UnitMultiplierIsConstantDelay) {
  BackoffPolicy policy{.base_delay = 0.5, .multiplier = 1.0,
                       .max_delay = 8.0};
  EXPECT_DOUBLE_EQ(policy.DelayForRetry(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.DelayForRetry(5), 0.5);
}

TEST(BackoffPolicyTest, JitterFreePolicyLeavesRngUntouched) {
  BackoffPolicy policy;  // jitter = 0
  Rng rng(7);
  Rng untouched(7);
  const double d = policy.DelayForRetry(3, rng);
  EXPECT_DOUBLE_EQ(d, policy.DelayForRetry(3));
  // The stream was not consumed.
  EXPECT_EQ(rng.NextUint64(), untouched.NextUint64());
}

TEST(BackoffPolicyTest, JitterStaysWithinBandAndIsDeterministic) {
  BackoffPolicy policy{.base_delay = 2.0, .multiplier = 2.0,
                       .max_delay = 64.0, .jitter = 0.25};
  Rng rng_a(11);
  Rng rng_b(11);
  for (int retry = 1; retry <= 6; ++retry) {
    const double nominal = policy.DelayForRetry(retry);
    const double jittered = policy.DelayForRetry(retry, rng_a);
    EXPECT_GE(jittered, nominal * 0.75);
    EXPECT_LE(jittered, nominal * 1.25);
    // Same seed, same draw order: identical jittered schedule.
    EXPECT_DOUBLE_EQ(jittered, policy.DelayForRetry(retry, rng_b));
  }
}

TEST(BackoffPolicyTest, ValidationRejectsBadPolicies) {
  EXPECT_TRUE(ValidateBackoffPolicy(BackoffPolicy{}).ok());
  EXPECT_FALSE(
      ValidateBackoffPolicy({.base_delay = 0.0}).ok());
  EXPECT_FALSE(
      ValidateBackoffPolicy({.base_delay = -1.0}).ok());
  EXPECT_FALSE(
      ValidateBackoffPolicy({.multiplier = 0.5}).ok());
  EXPECT_FALSE(
      ValidateBackoffPolicy({.base_delay = 10.0, .max_delay = 1.0}).ok());
  EXPECT_FALSE(ValidateBackoffPolicy({.jitter = 1.0}).ok());
  EXPECT_FALSE(ValidateBackoffPolicy({.jitter = -0.1}).ok());
}

}  // namespace
}  // namespace distsketch
