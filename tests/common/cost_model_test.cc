#include "common/cost_model.h"

#include <gtest/gtest.h>

namespace distsketch {
namespace {

TEST(CostModelTest, WordSizeGrowsWithInstance) {
  const CostModel small(100, 10, 0.1);
  const CostModel large(1000000, 1000, 0.001);
  EXPECT_GE(large.bits_per_word(), small.bits_per_word());
  EXPECT_GE(small.bits_per_word(), 32u);
}

TEST(CostModelTest, WordSizeIsLogarithmic) {
  // log2(1e6 * 1e3 / 1e-3) = log2(1e12) ~ 40 bits plus slack.
  const CostModel m(1000000, 1000, 0.001);
  EXPECT_GE(m.bits_per_word(), 40u);
  EXPECT_LE(m.bits_per_word(), 48u);
}

TEST(CostModelTest, MatrixWordsIsEntryCount) {
  const CostModel m(100, 10, 0.1);
  EXPECT_EQ(m.MatrixWords(5, 7), 35u);
  EXPECT_EQ(m.ScalarWords(3), 3u);
}

TEST(CostModelTest, WordBitConversionRoundTrips) {
  const CostModel m(100, 10, 0.1);
  const uint64_t words = 17;
  const uint64_t bits = m.WordsToBits(words);
  EXPECT_EQ(bits, words * m.bits_per_word());
  EXPECT_EQ(m.BitsToWords(bits), words);
  // Partial word rounds up.
  EXPECT_EQ(m.BitsToWords(bits + 1), words + 1);
  EXPECT_EQ(m.BitsToWords(1), 1u);
}

}  // namespace
}  // namespace distsketch
