#include "common/status.h"

#include <gtest/gtest.h>

namespace distsketch {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::InvalidArgument("bad arg").message(), "bad arg");
}

TEST(StatusTest, FaultLayerCodesRoundTripThroughToString) {
  EXPECT_EQ(Status::Unavailable("server 3 lost").ToString(),
            "Unavailable: server 3 lost");
  EXPECT_EQ(Status::DeadlineExceeded("timeout").ToString(),
            "DeadlineExceeded: timeout");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::NumericalError("diverged");
  EXPECT_EQ(s.ToString(), "NumericalError: diverged");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::NotFound("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("gone"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  ASSERT_TRUE(v.ok());
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  DS_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(4, &out).ok());
  EXPECT_EQ(out, 2);
  const Status st = UseHalf(3, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNumericalError),
            "NumericalError");
}

}  // namespace
}  // namespace distsketch
