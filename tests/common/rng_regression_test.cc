// Pins the exact output stream of distsketch::Rng. Every randomized
// protocol (SVS Bernoulli sampling, adaptive compression, the fault
// injector's schedule) derives its behaviour from this stream, so a
// silent change to the generator would invalidate every golden transcript
// and seed-pinned experiment in the repo. These values were captured from
// the current xoshiro256++ implementation; if they ever change, that is a
// breaking change to reproducibility, not a test to update casually.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"
#include "sketch/sampling_function.h"
#include "sketch/svs.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

TEST(RngRegressionTest, RawStreamIsPinned) {
  Rng rng(42);
  EXPECT_EQ(rng.NextUint64(), 15021278609987233951ULL);
  EXPECT_EQ(rng.NextUint64(), 5881210131331364753ULL);
  EXPECT_EQ(rng.NextUint64(), 18149643915985481100ULL);
  EXPECT_EQ(rng.NextUint64(), 12933668939759105464ULL);
}

TEST(RngRegressionTest, DoubleStreamIsPinned) {
  Rng rng(42);
  EXPECT_DOUBLE_EQ(rng.NextDouble(), 0.81430514512290986);
  EXPECT_DOUBLE_EQ(rng.NextDouble(), 0.31882104006166112);
  EXPECT_DOUBLE_EQ(rng.NextDouble(), 0.98389416817748876);
  EXPECT_DOUBLE_EQ(rng.NextDouble(), 0.70113559813475557);
}

TEST(RngRegressionTest, DeriveSeedIsPinned) {
  EXPECT_EQ(Rng::DeriveSeed(7, 0), 18363971414914884509ULL);
  EXPECT_EQ(Rng::DeriveSeed(7, 1), 1344154044715485647ULL);
  EXPECT_EQ(Rng::DeriveSeed(7, 2), 10439198631842511153ULL);
  // Sibling streams are decorrelated, not sequential.
  EXPECT_NE(Rng::DeriveSeed(7, 1), Rng::DeriveSeed(7, 0) + 1);
}

TEST(RngRegressionTest, BernoulliMaskIsPinned) {
  // The SVS sampling decisions are NextBernoulli draws; pin a 16-draw
  // mask so a change to the Bernoulli path (and not just the raw
  // stream) is caught directly.
  Rng rng(123);
  unsigned mask = 0;
  for (int i = 0; i < 16; ++i) {
    mask |= (rng.NextBernoulli(0.3) ? 1u : 0u) << i;
  }
  EXPECT_EQ(mask, 0x10u);
}

TEST(RngRegressionTest, BoundedDrawsArePinned) {
  Rng rng(42);
  EXPECT_EQ(rng.NextUint64Below(10), 1u);
  EXPECT_EQ(rng.NextUint64Below(10), 3u);
  EXPECT_EQ(rng.NextUint64Below(10), 0u);
}

TEST(RngRegressionTest, SvsSampleCountIsPinned) {
  // End-to-end pin through the SVS Bernoulli path: fixed workload,
  // fixed derived seed, fixed sampled-row count.
  const Matrix a = GenerateLowRankPlusNoise({.rows = 120,
                                             .cols = 12,
                                             .rank = 4,
                                             .decay = 0.7,
                                             .top_singular_value = 30.0,
                                             .noise_stddev = 0.4,
                                             .seed = 3});
  SamplingFunctionParams params;
  params.num_servers = 4;
  params.alpha = 0.15;
  params.total_frobenius = SquaredFrobeniusNorm(a);
  params.dim = 12;
  params.delta = 0.05;
  auto g = MakeSamplingFunction(SamplingFunctionKind::kLinear, params);
  ASSERT_TRUE(g.ok());
  auto svs = Svs(a, **g, Rng::DeriveSeed(13, 1));
  ASSERT_TRUE(svs.ok());
  EXPECT_EQ(svs->sketch.rows(), 9u);
}

}  // namespace
}  // namespace distsketch
