#include "wire/sketch_serde.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "sketch/adaptive_sketch.h"
#include "sketch/countsketch.h"
#include "sketch/fast_frequent_directions.h"
#include "sketch/frequent_directions.h"
#include "sketch/row_sampling.h"
#include "sketch/sliding_window.h"

namespace distsketch {
namespace wire {
namespace {

Matrix FilledMatrix(size_t rows, size_t cols, uint64_t salt) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m(r, c) = static_cast<double>(r * cols + c + salt) * 0.0625 - 2.0;
    }
  }
  return m;
}

void ExpectMatrixBitsEq(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      uint64_t wa, wb;
      const double da = a(r, c), db = b(r, c);
      std::memcpy(&wa, &da, 8);
      std::memcpy(&wb, &db, 8);
      ASSERT_EQ(wa, wb) << "entry (" << r << ", " << c << ")";
    }
  }
}

FdSketchState MakeFdState() {
  FdSketchState state;
  state.dim = 6;
  state.sketch_size = 4;
  state.buffer = FilledMatrix(5, 6, 1);
  state.total_shrinkage = 3.5;
  state.shrink_count = 2;
  state.rows_seen = 37;
  return state;
}

TEST(SketchSerdeTest, FdRoundTripAndReserializeIdentical) {
  const FdSketchState state = MakeFdState();
  const std::vector<uint8_t> blob = SerializeSketchState(state);
  auto compact = CompactSketch::Wrap(blob.data(), blob.size());
  ASSERT_TRUE(compact.ok()) << compact.status().message();
  EXPECT_EQ(compact->kind(), SketchKind::kFrequentDirections);
  auto restored = compact->ToFdState();
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored->dim, state.dim);
  EXPECT_EQ(restored->sketch_size, state.sketch_size);
  EXPECT_EQ(restored->total_shrinkage, state.total_shrinkage);
  EXPECT_EQ(restored->shrink_count, state.shrink_count);
  EXPECT_EQ(restored->rows_seen, state.rows_seen);
  ExpectMatrixBitsEq(restored->buffer, state.buffer);
  // The format has a unique encoding per state: re-serializing the
  // round-tripped state must reproduce the input bytes exactly.
  EXPECT_EQ(SerializeSketchState(*restored), blob);
}

TEST(SketchSerdeTest, FastFdRoundTrip) {
  FastFdState state;
  state.dim = 5;
  state.sketch_size = 3;
  state.seed = 0xC0FFEE;
  state.buffer = FilledMatrix(4, 5, 2);
  state.total_shrinkage = 1.25;
  state.shrink_count = 1;
  const std::vector<uint8_t> blob = SerializeSketchState(state);
  auto compact = CompactSketch::Wrap(blob.data(), blob.size());
  ASSERT_TRUE(compact.ok()) << compact.status().message();
  EXPECT_EQ(compact->kind(), SketchKind::kFastFrequentDirections);
  auto restored = compact->ToFastFdState();
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored->seed, state.seed);
  EXPECT_EQ(restored->shrink_count, state.shrink_count);
  ExpectMatrixBitsEq(restored->buffer, state.buffer);
  EXPECT_EQ(SerializeSketchState(*restored), blob);
}

TEST(SketchSerdeTest, SvsRoundTrip) {
  SvsSketchState state;
  state.sketch = FilledMatrix(3, 4, 5);
  state.candidates = 12;
  state.sampled = 3;
  state.expected_sampled = 2.75;
  state.seed = 99;
  const std::vector<uint8_t> blob = SerializeSketchState(state);
  auto compact = CompactSketch::Wrap(blob.data(), blob.size());
  ASSERT_TRUE(compact.ok()) << compact.status().message();
  auto restored = compact->ToSvsState();
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored->candidates, state.candidates);
  EXPECT_EQ(restored->sampled, state.sampled);
  EXPECT_EQ(restored->expected_sampled, state.expected_sampled);
  EXPECT_EQ(restored->seed, state.seed);
  ExpectMatrixBitsEq(restored->sketch, state.sketch);
  EXPECT_EQ(SerializeSketchState(*restored), blob);
}

TEST(SketchSerdeTest, AdaptiveRoundTripWithNestedFdBlob) {
  AdaptiveSketchState state;
  state.dim = 6;
  state.eps = 0.25;
  state.k = 2;
  state.seed = 1234;
  state.fd = MakeFdState();
  state.finished = true;
  state.head = FilledMatrix(2, 6, 11);
  state.tail = FilledMatrix(3, 6, 13);
  state.tail_mass = 17.5;
  const std::vector<uint8_t> blob = SerializeSketchState(state);
  auto compact = CompactSketch::Wrap(blob.data(), blob.size());
  ASSERT_TRUE(compact.ok()) << compact.status().message();
  auto restored = compact->ToAdaptiveState();
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored->eps, state.eps);
  EXPECT_EQ(restored->k, state.k);
  EXPECT_EQ(restored->finished, state.finished);
  EXPECT_EQ(restored->tail_mass, state.tail_mass);
  EXPECT_EQ(restored->fd.rows_seen, state.fd.rows_seen);
  ExpectMatrixBitsEq(restored->fd.buffer, state.fd.buffer);
  ExpectMatrixBitsEq(restored->head, state.head);
  ExpectMatrixBitsEq(restored->tail, state.tail);
  EXPECT_EQ(SerializeSketchState(*restored), blob);
}

TEST(SketchSerdeTest, CountSketchRoundTrip) {
  CountSketchState state;
  state.seed = 777;
  state.compressed = FilledMatrix(4, 5, 17);
  const std::vector<uint8_t> blob = SerializeSketchState(state);
  auto compact = CompactSketch::Wrap(blob.data(), blob.size());
  ASSERT_TRUE(compact.ok()) << compact.status().message();
  auto restored = compact->ToCountSketchState();
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored->seed, state.seed);
  ExpectMatrixBitsEq(restored->compressed, state.compressed);
  EXPECT_EQ(SerializeSketchState(*restored), blob);
}

TEST(SketchSerdeTest, SlidingWindowRoundTripWithBlocks) {
  SlidingWindowState state;
  state.dim = 4;
  state.window = 16;
  state.eps = 0.5;
  state.block_rows = 4;
  SlidingWindowBlockState b0{FilledMatrix(2, 4, 19), 0, 4};
  SlidingWindowBlockState b1{FilledMatrix(3, 4, 23), 4, 8};
  state.blocks = {b0, b1};
  state.active.dim = 4;
  state.active.sketch_size = 4;
  state.active.buffer = FilledMatrix(3, 4, 29);
  state.active.rows_seen = 3;
  state.active_begin = 8;
  state.rows_seen = 11;
  state.max_row_norm = 6.5;
  const std::vector<uint8_t> blob = SerializeSketchState(state);
  auto compact = CompactSketch::Wrap(blob.data(), blob.size());
  ASSERT_TRUE(compact.ok()) << compact.status().message();
  auto restored = compact->ToSlidingWindowState();
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  ASSERT_EQ(restored->blocks.size(), 2u);
  EXPECT_EQ(restored->blocks[0].begin, 0u);
  EXPECT_EQ(restored->blocks[1].end, 8u);
  ExpectMatrixBitsEq(restored->blocks[1].sketch, b1.sketch);
  ExpectMatrixBitsEq(restored->active.buffer, state.active.buffer);
  EXPECT_EQ(restored->max_row_norm, state.max_row_norm);
  EXPECT_EQ(SerializeSketchState(*restored), blob);
}

TEST(SketchSerdeTest, RowSamplingRoundTripRestoresRngMidstream) {
  RowSamplingState state;
  state.dim = 5;
  state.num_samples = 3;
  Rng rng(4242);
  rng.NextDouble();
  rng.NextDouble();
  state.rng = rng.SaveState();
  state.reservoir = FilledMatrix(3, 5, 31);
  state.present = {1, 0, 1};
  for (size_t c = 0; c < 5; ++c) state.reservoir(1, c) = 0.0;
  state.weights = {2.25, 0.0, 4.5};
  state.total_mass = 10.75;
  const std::vector<uint8_t> blob = SerializeSketchState(state);
  auto compact = CompactSketch::Wrap(blob.data(), blob.size());
  ASSERT_TRUE(compact.ok()) << compact.status().message();
  auto restored = compact->ToRowSamplingState();
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored->rng.s, state.rng.s);
  EXPECT_EQ(restored->present, state.present);
  EXPECT_EQ(restored->weights, state.weights);
  EXPECT_EQ(restored->total_mass, state.total_mass);
  // The restored RNG continues exactly where the saved one left off.
  Rng continued = Rng::FromState(restored->rng);
  EXPECT_EQ(continued.NextUint64(), rng.NextUint64());
  EXPECT_EQ(SerializeSketchState(*restored), blob);
}

TEST(SketchSerdeTest, CoordinatorCheckpointRoundTrip) {
  CoordinatorCheckpoint checkpoint;
  checkpoint.protocol_id = 2;
  checkpoint.servers_total = 4;
  checkpoint.done = {1, 0, 1, 0};
  checkpoint.global_scalar = 42.5;
  checkpoint.sketch_blob = SerializeSketchState(MakeFdState());
  checkpoint.extra = FilledMatrix(2, 4, 37);
  const std::vector<uint8_t> blob = EncodeCoordinatorCheckpoint(checkpoint);
  auto restored = DecodeCoordinatorCheckpoint(blob.data(), blob.size());
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored->protocol_id, checkpoint.protocol_id);
  EXPECT_EQ(restored->servers_total, checkpoint.servers_total);
  EXPECT_EQ(restored->done, checkpoint.done);
  EXPECT_EQ(restored->global_scalar, checkpoint.global_scalar);
  EXPECT_EQ(restored->sketch_blob, checkpoint.sketch_blob);
  ExpectMatrixBitsEq(restored->extra, checkpoint.extra);
  EXPECT_EQ(EncodeCoordinatorCheckpoint(*restored), blob);
}

TEST(SketchSerdeTest, DenseSectionIsZeroCopy) {
  const FdSketchState state = MakeFdState();
  const std::vector<uint8_t> blob = SerializeSketchState(state);
  auto compact = CompactSketch::Wrap(blob.data(), blob.size());
  ASSERT_TRUE(compact.ok());
  auto view = compact->DenseSection(kSecPrimaryMatrix);
  ASSERT_TRUE(view.ok()) << view.status().message();
  EXPECT_EQ(view->rows, 5u);
  EXPECT_EQ(view->cols, 6u);
  // The view's entries point into the wrapped buffer — no copy.
  const uint8_t* entries = reinterpret_cast<const uint8_t*>(view->data);
  EXPECT_GE(entries, blob.data());
  EXPECT_LE(entries + view->rows * view->cols * 8, blob.data() + blob.size());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(view->data) % 8, 0u);
  EXPECT_EQ(view->data[0], state.buffer(0, 0));
}

TEST(SketchSerdeTest, MisalignedBufferRejected) {
  const std::vector<uint8_t> blob = SerializeSketchState(MakeFdState());
  std::vector<uint8_t> shifted(blob.size() + 1);
  std::memcpy(shifted.data() + 1, blob.data(), blob.size());
  auto compact = CompactSketch::Wrap(shifted.data() + 1, blob.size());
  ASSERT_FALSE(compact.ok());
  EXPECT_NE(compact.status().message().find("misaligned buffer"),
            std::string::npos);
}

TEST(SketchSerdeTest, KindMismatchRejectedOnConversion) {
  CountSketchState state;
  state.seed = 7;
  state.compressed = FilledMatrix(2, 3, 1);
  const std::vector<uint8_t> blob = SerializeSketchState(state);
  auto compact = CompactSketch::Wrap(blob.data(), blob.size());
  ASSERT_TRUE(compact.ok());
  EXPECT_FALSE(compact->ToFdState().ok());
  EXPECT_FALSE(compact->ToSvsState().ok());
  EXPECT_TRUE(compact->ToCountSketchState().ok());
}

TEST(SketchSerdeTest, LiveFdSerializeRestoreContinueBitIdentical) {
  const Matrix rows = FilledMatrix(40, 6, 3);
  // Uninterrupted reference run.
  FrequentDirections reference(6, 4);
  for (size_t r = 0; r < rows.rows(); ++r) reference.Append(rows.Row(r));

  // Interrupted run: serialize at several cut points, wrap, convert back
  // to update form, continue with the remaining rows.
  for (size_t cut : {size_t{0}, size_t{7}, size_t{19}, size_t{40}}) {
    FrequentDirections first(6, 4);
    for (size_t r = 0; r < cut; ++r) first.Append(rows.Row(r));
    const std::vector<uint8_t> blob = SerializeSketch(first);
    auto compact = CompactSketch::Wrap(blob.data(), blob.size());
    ASSERT_TRUE(compact.ok()) << compact.status().message();
    auto second = compact->ToFrequentDirections();
    ASSERT_TRUE(second.ok()) << second.status().message();
    for (size_t r = cut; r < rows.rows(); ++r) second->Append(rows.Row(r));
    ExpectMatrixBitsEq(second->Sketch(), reference.Sketch());
  }
}

}  // namespace
}  // namespace wire
}  // namespace distsketch
