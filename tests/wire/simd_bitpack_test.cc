// Cross-backend bit-exactness of the DSQM pack/unpack window kernels:
// encoded bytes and decoded doubles must be identical across scalar,
// AVX2, and AVX-512 at every bit width 1..63, including the magnitude
// boundary values of each width. The wire format is frozen (golden
// suite), so this is a format-stability contract, not a tolerance.

#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "linalg/simd_dispatch.h"
#include "sketch/quantizer.h"
#include "wire/codec.h"

namespace distsketch {
namespace {

std::vector<SimdBackend> AllSupportedBackends() {
  std::vector<SimdBackend> out = {SimdBackend::kScalar};
  for (const SimdBackend b : {SimdBackend::kAvx2, SimdBackend::kAvx512}) {
    if (SimdBackendSupported(b)) out.push_back(b);
  }
  return out;
}

class BackendGuard {
 public:
  BackendGuard() : prev_(ActiveSimdBackend()) {}
  ~BackendGuard() { SetSimdBackendForTesting(prev_); }

 private:
  SimdBackend prev_;
};

// Quotient stream exercising each width's boundary: zeros, +-1, the
// extreme magnitudes representable at bpe, and random fill.
std::vector<int64_t> BoundaryQuotients(uint64_t bpe, size_t entries,
                                       uint64_t seed) {
  const int64_t max_mag =
      static_cast<int64_t>((1ULL << (bpe - 1)) - 1);  // bpe-1 magnitude bits
  std::vector<int64_t> q(entries, 0);
  Rng rng(seed);
  for (size_t i = 0; i < entries; ++i) {
    switch (i % 7) {
      case 0: q[i] = 0; break;
      case 1: q[i] = max_mag; break;
      case 2: q[i] = -max_mag; break;
      case 3: q[i] = max_mag >= 1 ? 1 : 0; break;
      case 4: q[i] = max_mag >= 1 ? -1 : 0; break;
      default:
        q[i] = static_cast<int64_t>(rng.NextUint64Below(
                   static_cast<uint64_t>(max_mag) + 1)) *
               (rng.NextBernoulli(0.5) ? -1 : 1);
    }
  }
  return q;
}

QuantizeResult MakeResult(std::vector<int64_t> quotients, uint64_t bpe,
                          size_t rows, size_t cols) {
  QuantizeResult q;
  q.matrix = Matrix(rows, cols);
  q.quotients = std::move(quotients);
  q.bits_per_entry = bpe;
  q.total_bits = bpe * rows * cols;
  q.precision = 0.0078125;  // 2^-7: exact, so decode is q * precision exactly
  return q;
}

TEST(SimdBitpackTest, EncodeBytesIdenticalAcrossBackendsEveryWidth) {
  BackendGuard guard;
  const size_t rows = 7, cols = 19;  // 133 entries: window body + tail
  for (uint64_t bpe = 1; bpe <= 63; ++bpe) {
    QuantizeResult q =
        MakeResult(BoundaryQuotients(bpe, rows * cols, bpe), bpe, rows, cols);
    std::vector<std::vector<uint8_t>> encoded;
    for (const SimdBackend backend : AllSupportedBackends()) {
      SetSimdBackendForTesting(backend);
      const auto payload = wire::EncodeQuantizedPayload(q);
      ASSERT_TRUE(payload.ok()) << "bpe=" << bpe;
      encoded.push_back(*payload);
    }
    for (size_t b = 1; b < encoded.size(); ++b) {
      EXPECT_EQ(encoded[b], encoded[0]) << "bpe=" << bpe << " backend#" << b;
    }
  }
}

TEST(SimdBitpackTest, DecodedDoublesIdenticalAcrossBackendsEveryWidth) {
  BackendGuard guard;
  const size_t rows = 5, cols = 29;
  for (uint64_t bpe = 1; bpe <= 63; ++bpe) {
    QuantizeResult q = MakeResult(BoundaryQuotients(bpe, rows * cols, 100 + bpe),
                                  bpe, rows, cols);
    SetSimdBackendForTesting(SimdBackend::kScalar);
    const auto payload = wire::EncodeQuantizedPayload(q);
    ASSERT_TRUE(payload.ok());
    std::vector<Matrix> decoded;
    for (const SimdBackend backend : AllSupportedBackends()) {
      SetSimdBackendForTesting(backend);
      const auto got = wire::DecodeMatrixPayload(payload->data(),
                                                 payload->size());
      ASSERT_TRUE(got.ok()) << "bpe=" << bpe;
      decoded.push_back(got->matrix);
    }
    for (size_t b = 1; b < decoded.size(); ++b) {
      for (size_t i = 0; i < decoded[0].size(); ++i) {
        // Bit-identical, signed zero included.
        EXPECT_EQ(std::memcmp(&decoded[b].data()[i], &decoded[0].data()[i],
                              sizeof(double)),
                  0)
            << "bpe=" << bpe << " backend#" << b << " entry " << i;
      }
    }
  }
}

TEST(SimdBitpackTest, RoundTripRecoversQuotientsEveryWidth) {
  BackendGuard guard;
  const size_t rows = 3, cols = 41;
  for (const SimdBackend backend : AllSupportedBackends()) {
    SetSimdBackendForTesting(backend);
    for (uint64_t bpe = 1; bpe <= 63; ++bpe) {
      QuantizeResult q = MakeResult(
          BoundaryQuotients(bpe, rows * cols, 7 * bpe), bpe, rows, cols);
      const auto payload = wire::EncodeQuantizedPayload(q);
      ASSERT_TRUE(payload.ok()) << "bpe=" << bpe;
      const auto got =
          wire::DecodeMatrixPayload(payload->data(), payload->size());
      ASSERT_TRUE(got.ok()) << "bpe=" << bpe;
      for (size_t i = 0; i < q.quotients.size(); ++i) {
        EXPECT_EQ(got->matrix.data()[i],
                  static_cast<double>(q.quotients[i]) * q.precision)
            << "backend=" << SimdBackendName(backend) << " bpe=" << bpe
            << " entry " << i;
      }
    }
  }
}

TEST(SimdBitpackTest, MagnitudeOverflowRejectedByEveryBackend) {
  BackendGuard guard;
  for (const SimdBackend backend : AllSupportedBackends()) {
    SetSimdBackendForTesting(backend);
    for (const uint64_t bpe : {1ULL, 2ULL, 8ULL, 53ULL, 62ULL, 63ULL}) {
      std::vector<int64_t> q(64, 0);
      q[37] = static_cast<int64_t>(1ULL << (bpe - 1));  // one too large
      const auto payload =
          wire::EncodeQuantizedPayload(MakeResult(std::move(q), bpe, 8, 8));
      EXPECT_FALSE(payload.ok())
          << "backend=" << SimdBackendName(backend) << " bpe=" << bpe;
    }
  }
}

TEST(SimdBitpackTest, Int64MinMagnitudeRejected) {
  // |INT64_MIN| is not representable; the vector range checks must not
  // be fooled by the negation wrapping back to INT64_MIN.
  BackendGuard guard;
  for (const SimdBackend backend : AllSupportedBackends()) {
    SetSimdBackendForTesting(backend);
    std::vector<int64_t> q(16, 0);
    q[4] = std::numeric_limits<int64_t>::min();
    const auto payload =
        wire::EncodeQuantizedPayload(MakeResult(std::move(q), 63, 4, 4));
    EXPECT_FALSE(payload.ok()) << "backend=" << SimdBackendName(backend);
  }
}

TEST(SimdBitpackTest, WindowKernelTailMatchesWholeStream) {
  // Pack via the raw kernel with a deliberately tight payload, then let
  // the per-bit tail finish: the final bytes must match a pure scalar
  // whole-stream pack. Exercises the kernel's window-bound break.
  BackendGuard guard;
  const uint64_t bpe = 11;
  const size_t entries = 93;
  const std::vector<int64_t> q = BoundaryQuotients(bpe, entries, 55);
  QuantizeResult qa = MakeResult(q, bpe, 3, 31);
  SetSimdBackendForTesting(SimdBackend::kScalar);
  const auto want = wire::EncodeQuantizedPayload(qa);
  ASSERT_TRUE(want.ok());
  for (const SimdBackend backend : AllSupportedBackends()) {
    SetSimdBackendForTesting(backend);
    QuantizeResult qb = MakeResult(q, bpe, 3, 31);
    const auto got = wire::EncodeQuantizedPayload(qb);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *want) << "backend=" << SimdBackendName(backend);
  }
}

}  // namespace
}  // namespace distsketch
