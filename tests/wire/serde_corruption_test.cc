// Exhaustive robustness suite for the v1 sketch blob decoder: truncate
// a valid blob at every byte offset and flip every single bit — Wrap()
// must return a clean error Status each time, never crash or read out
// of bounds. The suite runs under the asan preset, which is what makes
// "never UB" a checked claim rather than a hope.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wire/checksum.h"
#include "wire/codec.h"
#include "wire/frame.h"
#include "wire/sketch_serde.h"

namespace distsketch {
namespace wire {
namespace {

Matrix FilledMatrix(size_t rows, size_t cols, uint64_t salt) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m(r, c) = static_cast<double>(r * cols + c + salt) * 0.0625 - 2.0;
    }
  }
  return m;
}

FdSketchState MakeFdState() {
  FdSketchState state;
  state.dim = 6;
  state.sketch_size = 4;
  state.buffer = FilledMatrix(5, 6, 1);
  state.total_shrinkage = 3.5;
  state.shrink_count = 2;
  state.rows_seen = 37;
  return state;
}

std::vector<uint8_t> MultiSectionBlob() {
  SlidingWindowState state;
  state.dim = 4;
  state.window = 16;
  state.eps = 0.5;
  state.block_rows = 4;
  state.blocks = {{FilledMatrix(2, 4, 19), 0, 4},
                  {FilledMatrix(3, 4, 23), 4, 8}};
  state.active.dim = 4;
  state.active.sketch_size = 4;
  state.active.buffer = FilledMatrix(3, 4, 29);
  state.active.rows_seen = 3;
  state.active_begin = 8;
  state.rows_seen = 11;
  state.max_row_norm = 6.5;
  return SerializeSketchState(state);
}

// Recomputes the envelope checksum after a deliberate mutation, so the
// test reaches the validation layer *behind* the checksum.
void FixChecksum(std::vector<uint8_t>* blob) {
  const uint64_t checksum =
      Checksum64(blob->data() + 24, blob->size() - 24);
  std::memcpy(blob->data() + 16, &checksum, 8);
}

void ExpectWrapRejects(const std::vector<uint8_t>& blob,
                       const char* substring) {
  auto compact = CompactSketch::Wrap(blob.data(), blob.size());
  ASSERT_FALSE(compact.ok()) << "expected rejection: " << substring;
  EXPECT_NE(compact.status().message().find(substring), std::string::npos)
      << compact.status().message();
}

TEST(SerdeCorruptionTest, EveryTruncationOfFdBlobFailsCleanly) {
  const std::vector<uint8_t> blob = SerializeSketchState(MakeFdState());
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    std::vector<uint8_t> prefix(blob.begin(), blob.begin() + cut);
    // Copy into an exactly-sized buffer so asan catches any read past
    // the truncation point.
    auto compact = CompactSketch::Wrap(prefix.data(), prefix.size());
    EXPECT_FALSE(compact.ok()) << "prefix " << cut << " accepted";
  }
}

TEST(SerdeCorruptionTest, EveryTruncationOfMultiSectionBlobFailsCleanly) {
  const std::vector<uint8_t> blob = MultiSectionBlob();
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    std::vector<uint8_t> prefix(blob.begin(), blob.begin() + cut);
    EXPECT_FALSE(CompactSketch::Wrap(prefix.data(), prefix.size()).ok())
        << "prefix " << cut << " accepted";
  }
}

TEST(SerdeCorruptionTest, EverySingleBitFlipOfFdBlobFailsCleanly) {
  const std::vector<uint8_t> blob = SerializeSketchState(MakeFdState());
  for (size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupted = blob;
      corrupted[byte] ^= static_cast<uint8_t>(1u << bit);
      auto compact = CompactSketch::Wrap(corrupted.data(), corrupted.size());
      EXPECT_FALSE(compact.ok())
          << "flip at byte " << byte << " bit " << bit << " accepted";
    }
  }
}

TEST(SerdeCorruptionTest, EverySingleBitFlipOfMultiSectionBlobFailsCleanly) {
  const std::vector<uint8_t> blob = MultiSectionBlob();
  for (size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupted = blob;
      corrupted[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(
          CompactSketch::Wrap(corrupted.data(), corrupted.size()).ok())
          << "flip at byte " << byte << " bit " << bit << " accepted";
    }
  }
}

TEST(SerdeCorruptionTest, EverySingleBitFlipOfCheckpointFailsCleanly) {
  CoordinatorCheckpoint checkpoint;
  checkpoint.protocol_id = 1;
  checkpoint.servers_total = 4;
  checkpoint.done = {1, 1, 0, 0};
  checkpoint.global_scalar = 42.5;
  checkpoint.sketch_blob = SerializeSketchState(MakeFdState());
  checkpoint.extra = FilledMatrix(2, 4, 37);
  const std::vector<uint8_t> blob = EncodeCoordinatorCheckpoint(checkpoint);
  for (size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupted = blob;
      corrupted[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(
          DecodeCoordinatorCheckpoint(corrupted.data(), corrupted.size())
              .ok())
          << "flip at byte " << byte << " bit " << bit << " accepted";
    }
  }
}

TEST(SerdeCorruptionTest, EverySingleBitFlipOfFrameIsHandledCleanly) {
  Frame frame;
  frame.tag = "local_sketch";
  frame.from = 2;
  frame.to = -1;
  frame.attempt = 1;
  frame.payload = EncodeDensePayload(FilledMatrix(3, 4, 9));
  const std::vector<uint8_t> buf = EncodeFrame(frame);
  // Offsets [12, 24) are from/to/attempt: pure routing metadata, not
  // covered by any integrity field, so a flip there still decodes (to a
  // frame whose only difference is that metadata). Everything else —
  // magic, version, tag_len, tag_id, lengths, checksum, tag bytes,
  // payload bytes — must be rejected with a clean Status. Either way:
  // no crash, no UB (this file runs under the asan preset).
  for (size_t byte = 0; byte < buf.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupted = buf;
      corrupted[byte] ^= static_cast<uint8_t>(1u << bit);
      auto decoded = DecodeFrame(corrupted.data(), corrupted.size());
      if (byte >= 12 && byte < 24) {
        ASSERT_TRUE(decoded.ok()) << "routing byte " << byte << " bit " << bit;
        EXPECT_EQ(decoded->tag, frame.tag);
        EXPECT_EQ(decoded->payload, frame.payload);
      } else {
        EXPECT_FALSE(decoded.ok())
            << "flip at byte " << byte << " bit " << bit << " accepted";
      }
    }
  }
}

TEST(SerdeCorruptionTest, EmptyAndTinyBuffersRejected) {
  ExpectWrapRejects({}, "truncated header");
  ExpectWrapRejects({0x44}, "truncated header");
  std::vector<uint8_t> almost(kSketchHeaderBytes - 1, 0);
  ExpectWrapRejects(almost, "truncated header");
}

TEST(SerdeCorruptionTest, HeaderFieldCorruptionsNameTheFailure) {
  const std::vector<uint8_t> blob = SerializeSketchState(MakeFdState());

  std::vector<uint8_t> bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  ExpectWrapRejects(bad_magic, "bad magic");

  std::vector<uint8_t> bad_version = blob;
  bad_version[4] = 9;
  ExpectWrapRejects(bad_version, "unsupported sketch format version");

  std::vector<uint8_t> bad_kind = blob;
  bad_kind[6] = 200;
  ExpectWrapRejects(bad_kind, "unknown sketch kind");

  // A kind byte flipped to a *different valid* kind passes every check
  // up to the header echo, which repeats the kind inside the
  // checksummed range.
  std::vector<uint8_t> swapped_kind = blob;
  swapped_kind[6] = 5;  // kFrequentDirections -> kCountSketch
  ExpectWrapRejects(swapped_kind, "header echo mismatch");

  std::vector<uint8_t> bad_flags = blob;
  bad_flags[7] = 1;
  ExpectWrapRejects(bad_flags, "unsupported flags");

  std::vector<uint8_t> bad_length = blob;
  bad_length[8] ^= 0x01;
  ExpectWrapRejects(bad_length, "length mismatch");

  std::vector<uint8_t> bad_body = blob;
  bad_body[blob.size() - 1] ^= 0x01;
  ExpectWrapRejects(bad_body, "checksum mismatch");
}

TEST(SerdeCorruptionTest, AdversarialSectionTableRejected) {
  const std::vector<uint8_t> blob = SerializeSketchState(MakeFdState());
  // Section entry 0 starts at the end of the 32-byte header:
  // { u32 id, u32 type, u64 offset, u64 length }.
  const size_t entry = kSketchHeaderBytes;

  {
    // Out-of-bounds section length (checksum re-fixed so the table is
    // actually inspected).
    std::vector<uint8_t> mutated = blob;
    const uint64_t huge = mutated.size() * 2;
    std::memcpy(mutated.data() + entry + 16, &huge, 8);
    FixChecksum(&mutated);
    ExpectWrapRejects(mutated, "bad section");
  }
  {
    // Unknown section type.
    std::vector<uint8_t> mutated = blob;
    const uint32_t bogus = 99;
    std::memcpy(mutated.data() + entry + 4, &bogus, 4);
    FixChecksum(&mutated);
    ExpectWrapRejects(mutated, "bad section");
  }
  {
    // Duplicate section id (copy entry 0's id into entry 1).
    std::vector<uint8_t> mutated = blob;
    std::memcpy(mutated.data() + entry + kSketchSectionEntryBytes,
                mutated.data() + entry, 4);
    FixChecksum(&mutated);
    ExpectWrapRejects(mutated, "bad section");
  }
  {
    // Misaligned word-section offset.
    std::vector<uint8_t> mutated = blob;
    uint64_t offset;
    std::memcpy(&offset, mutated.data() + entry + 8, 8);
    offset += 1;
    std::memcpy(mutated.data() + entry + 8, &offset, 8);
    FixChecksum(&mutated);
    ExpectWrapRejects(mutated, "bad section");
  }
}

TEST(SerdeCorruptionTest, MissingSectionRejectedOnConversion) {
  // A structurally valid blob whose section inventory does not match the
  // kind must fail conversion, not crash: serialize a CountSketch blob
  // and retag it as FD via the kind byte + echo (checksum re-fixed).
  CountSketchState state;
  state.seed = 7;
  state.compressed = FilledMatrix(2, 3, 1);
  std::vector<uint8_t> blob = SerializeSketchState(state);
  blob[6] = 1;  // kind -> kFrequentDirections
  uint32_t echo = (1u << 16) | (1u << 8);
  std::memcpy(blob.data() + 28, &echo, 4);
  FixChecksum(&blob);
  auto compact = CompactSketch::Wrap(blob.data(), blob.size());
  ASSERT_TRUE(compact.ok()) << compact.status().message();
  EXPECT_FALSE(compact->ToFdState().ok());
}

}  // namespace
}  // namespace wire
}  // namespace distsketch
