// Golden-binary compatibility suite: replays the committed v1 binaries
// under tests/golden/ (emitted once by tools/gen_golden) and asserts
// they still decode bit-exactly and re-encode to identical bytes. A
// failure here means the wire format changed — which v1 freezes. Fix
// the code, not the goldens; regenerating them is a format break and
// needs a version bump.

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wire/checksum.h"
#include "wire/codec.h"
#include "wire/frame.h"
#include "wire/sketch_serde.h"

#ifndef DS_GOLDEN_DIR
#error "DS_GOLDEN_DIR must point at the committed tests/golden directory"
#endif

namespace distsketch {
namespace wire {
namespace {

struct ManifestEntry {
  std::string kind;
  size_t bytes = 0;
  uint64_t checksum = 0;
};

std::string GoldenPath(const std::string& file) {
  return std::string(DS_GOLDEN_DIR) + "/" + file;
}

std::vector<uint8_t> ReadGolden(const std::string& file) {
  std::ifstream in(GoldenPath(file), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden: " << file;
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return bytes;
}

std::map<std::string, ManifestEntry> ReadManifest() {
  std::map<std::string, ManifestEntry> manifest;
  std::ifstream in(GoldenPath("manifest.txt"));
  EXPECT_TRUE(in.good()) << "missing golden manifest";
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string file, checksum_hex;
    ManifestEntry entry;
    fields >> file >> entry.kind >> entry.bytes >> checksum_hex;
    EXPECT_FALSE(fields.fail()) << "bad manifest line: " << line;
    entry.checksum = std::stoull(checksum_hex, nullptr, 16);
    manifest[file] = entry;
  }
  return manifest;
}

TEST(GoldenCompatTest, FormatConstantsAreFrozen) {
  // These values are load-bearing for every committed binary. Changing
  // any of them is a format break.
  EXPECT_EQ(kSketchMagic, 0x4B535344u);
  EXPECT_EQ(kSketchFormatVersion, 1u);
  EXPECT_EQ(kSketchHeaderBytes, 32u);
  EXPECT_EQ(kSketchSectionEntryBytes, 24u);
  EXPECT_EQ(kFrameMagic, 0x46575344u);
  EXPECT_EQ(kFrameVersion, 1u);
  EXPECT_EQ(kFrameHeaderBytes, 40u);
}

TEST(GoldenCompatTest, ManifestMatchesFilesOnDisk) {
  const auto manifest = ReadManifest();
  EXPECT_EQ(manifest.size(), 12u);
  for (const auto& [file, entry] : manifest) {
    const std::vector<uint8_t> bytes = ReadGolden(file);
    EXPECT_EQ(bytes.size(), entry.bytes) << file;
    EXPECT_EQ(Checksum64(bytes.data(), bytes.size()), entry.checksum) << file;
  }
}

TEST(GoldenCompatTest, SketchBlobsDecodeAndReencodeIdentically) {
  const auto manifest = ReadManifest();
  for (const auto& [file, entry] : manifest) {
    if (file.find(".sketch") == std::string::npos) continue;
    const std::vector<uint8_t> blob = ReadGolden(file);
    if (entry.kind == "coordinator_checkpoint") {
      auto checkpoint = DecodeCoordinatorCheckpoint(blob.data(), blob.size());
      ASSERT_TRUE(checkpoint.ok())
          << file << ": " << checkpoint.status().message();
      EXPECT_EQ(EncodeCoordinatorCheckpoint(*checkpoint), blob) << file;
      continue;
    }
    auto compact = CompactSketch::Wrap(blob.data(), blob.size());
    ASSERT_TRUE(compact.ok()) << file << ": " << compact.status().message();
    std::vector<uint8_t> reencoded;
    if (entry.kind == "frequent_directions") {
      auto state = compact->ToFdState();
      ASSERT_TRUE(state.ok()) << file << ": " << state.status().message();
      reencoded = SerializeSketchState(*state);
    } else if (entry.kind == "fast_frequent_directions") {
      auto state = compact->ToFastFdState();
      ASSERT_TRUE(state.ok()) << file << ": " << state.status().message();
      reencoded = SerializeSketchState(*state);
    } else if (entry.kind == "svs") {
      auto state = compact->ToSvsState();
      ASSERT_TRUE(state.ok()) << file << ": " << state.status().message();
      reencoded = SerializeSketchState(*state);
    } else if (entry.kind == "adaptive") {
      auto state = compact->ToAdaptiveState();
      ASSERT_TRUE(state.ok()) << file << ": " << state.status().message();
      reencoded = SerializeSketchState(*state);
    } else if (entry.kind == "countsketch") {
      auto state = compact->ToCountSketchState();
      ASSERT_TRUE(state.ok()) << file << ": " << state.status().message();
      reencoded = SerializeSketchState(*state);
    } else if (entry.kind == "sliding_window") {
      auto state = compact->ToSlidingWindowState();
      ASSERT_TRUE(state.ok()) << file << ": " << state.status().message();
      reencoded = SerializeSketchState(*state);
    } else if (entry.kind == "row_sampling") {
      auto state = compact->ToRowSamplingState();
      ASSERT_TRUE(state.ok()) << file << ": " << state.status().message();
      reencoded = SerializeSketchState(*state);
    } else {
      FAIL() << "unknown manifest kind: " << entry.kind;
    }
    EXPECT_EQ(reencoded, blob) << file << " re-encode differs";
  }
}

TEST(GoldenCompatTest, PayloadGoldensDecodeAndReencodeIdentically) {
  {
    const std::vector<uint8_t> payload = ReadGolden("dense_3x5.payload");
    auto decoded = DecodeMatrixPayload(payload.data(), payload.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->matrix.rows(), 3u);
    EXPECT_EQ(decoded->matrix.cols(), 5u);
    EXPECT_EQ(EncodeDensePayload(decoded->matrix), payload);
  }
  {
    const std::vector<uint8_t> payload = ReadGolden("dense_0x4.payload");
    auto decoded = DecodeMatrixPayload(payload.data(), payload.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->matrix.rows(), 0u);
    EXPECT_EQ(decoded->matrix.cols(), 4u);
    EXPECT_EQ(EncodeDensePayload(decoded->matrix), payload);
  }
  {
    const std::vector<uint8_t> payload = ReadGolden("quant_4x4_b12.payload");
    auto decoded = DecodeMatrixPayload(payload.data(), payload.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->matrix.rows(), 4u);
    EXPECT_EQ(decoded->matrix.cols(), 4u);
    EXPECT_EQ(decoded->encoding, MatrixEncoding::kQuantized);
    EXPECT_EQ(decoded->precision, 1.0 / 1024.0);
  }
}

TEST(GoldenCompatTest, FrameGoldenDecodesAndReencodesIdentically) {
  const std::vector<uint8_t> buf = ReadGolden("frame_local_sketch.frame");
  auto frame = DecodeFrame(buf.data(), buf.size());
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_EQ(frame->tag, "local_sketch");
  EXPECT_EQ(frame->from, 3);
  EXPECT_EQ(frame->to, -1);
  EXPECT_EQ(frame->attempt, 1u);
  EXPECT_EQ(EncodeFrame(*frame), buf);
}

TEST(GoldenCompatTest, VersionBumpIsCleanlyRejected) {
  std::vector<uint8_t> blob = ReadGolden("fd_state.sketch");
  ASSERT_GE(blob.size(), kSketchHeaderBytes);
  blob[4] = 2;  // version u16 LE low byte: 1 -> 2
  auto compact = CompactSketch::Wrap(blob.data(), blob.size());
  ASSERT_FALSE(compact.ok());
  EXPECT_NE(
      compact.status().message().find("unsupported sketch format version"),
      std::string::npos)
      << compact.status().message();
}

TEST(GoldenCompatTest, FrameVersionBumpIsCleanlyRejected) {
  std::vector<uint8_t> buf = ReadGolden("frame_local_sketch.frame");
  ASSERT_GE(buf.size(), kFrameHeaderBytes);
  buf[4] = 2;  // version u16 LE low byte
  auto frame = DecodeFrame(buf.data(), buf.size());
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("bad version"), std::string::npos);
}

}  // namespace
}  // namespace wire
}  // namespace distsketch
