#include "wire/codec.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "sketch/quantizer.h"

namespace distsketch {
namespace wire {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng.NextUniform(-50.0, 50.0);
  }
  return m;
}

bool BitExactEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(DenseCodecTest, RoundTripIsBitExactAcrossShapes) {
  const size_t shapes[][2] = {{0, 7}, {1, 1}, {1, 13}, {8, 1},
                              {5, 5}, {17, 3}, {64, 9}};
  uint64_t seed = 1;
  for (const auto& shape : shapes) {
    const Matrix a = RandomMatrix(shape[0], shape[1], seed++);
    const std::vector<uint8_t> payload = EncodeDensePayload(a);
    auto decoded = DecodeMatrixPayload(payload.data(), payload.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->encoding, MatrixEncoding::kDense);
    EXPECT_EQ(decoded->quantized_bits, 0u);
    EXPECT_TRUE(BitExactEqual(a, decoded->matrix))
        << shape[0] << "x" << shape[1];
  }
}

TEST(DenseCodecTest, SpecialValuesSurviveTheWire) {
  Matrix a(2, 3);
  a(0, 0) = 0.0;
  a(0, 1) = -0.0;
  a(0, 2) = 1e-308;            // subnormal-adjacent
  a(1, 0) = -1.7976931348623157e308;  // -DBL_MAX
  a(1, 1) = 4.9e-324;          // smallest subnormal
  a(1, 2) = -3.141592653589793;
  const std::vector<uint8_t> payload = EncodeDensePayload(a);
  auto decoded = DecodeMatrixPayload(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(BitExactEqual(a, decoded->matrix));
  // -0.0 round-trips with its sign bit (the codec is a byte copy).
  EXPECT_TRUE(std::signbit(decoded->matrix(0, 1)));
}

TEST(DenseCodecTest, RejectsMangledBodies) {
  const Matrix a = RandomMatrix(3, 4, 99);
  std::vector<uint8_t> body;
  AppendDenseBody(a, &body);

  {  // Wrong magic.
    std::vector<uint8_t> bad = body;
    bad[0] ^= 0xFF;
    auto st = DecodeDenseBody(bad.data(), bad.size());
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.status().message().find("bad magic"), std::string::npos);
  }
  {  // Shorter than the shape header.
    auto st = DecodeDenseBody(body.data(), 10);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.status().message().find("truncated header"),
              std::string::npos);
  }
  {  // Every strict prefix past the header loses payload bytes.
    auto st = DecodeDenseBody(body.data(), body.size() - 1);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.status().message().find("truncated payload"),
              std::string::npos);
  }
  {  // Trailing garbage is rejected, not ignored.
    std::vector<uint8_t> bad = body;
    bad.push_back(0);
    EXPECT_FALSE(DecodeDenseBody(bad.data(), bad.size()).ok());
  }
  {  // Implausible shape: rows field beyond the 2^32 cap.
    std::vector<uint8_t> bad = body;
    const uint64_t huge = uint64_t{1} << 40;
    std::memcpy(bad.data() + 4, &huge, sizeof(huge));
    auto st = DecodeDenseBody(bad.data(), bad.size());
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.status().message().find("implausible shape"),
              std::string::npos);
  }
}

TEST(PayloadDispatchTest, RejectsUnknownEncodingAndEmptyPayloads) {
  EXPECT_FALSE(DecodeMatrixPayload(nullptr, 0).ok());
  const uint8_t junk[] = {0x7F, 1, 2, 3};
  EXPECT_FALSE(DecodeMatrixPayload(junk, sizeof(junk)).ok());
}

TEST(QuantizedCodecTest, RoundTripMatchesQuantizerExactly) {
  uint64_t seed = 11;
  for (const size_t rows : {size_t{1}, size_t{6}, size_t{23}}) {
    const Matrix a = RandomMatrix(rows, 8, seed++);
    const double precision = 1e-4;
    auto q = QuantizeMatrix(a, precision);
    ASSERT_TRUE(q.ok());
    auto payload = EncodeQuantizedPayload(*q);
    ASSERT_TRUE(payload.ok());
    auto decoded = DecodeMatrixPayload(payload->data(), payload->size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->encoding, MatrixEncoding::kQuantized);
    EXPECT_EQ(decoded->quantized_bits, q->total_bits);
    EXPECT_EQ(decoded->precision, precision);
    // The decoded entries reproduce the sender's rounded matrix, so the
    // end-to-end error against the original stays within precision / 2.
    ASSERT_EQ(decoded->matrix.rows(), a.rows());
    double max_err = 0.0;
    for (size_t i = 0; i < a.rows(); ++i) {
      for (size_t j = 0; j < a.cols(); ++j) {
        EXPECT_EQ(decoded->matrix(i, j), q->matrix(i, j));
        max_err = std::max(max_err, std::abs(decoded->matrix(i, j) - a(i, j)));
      }
    }
    EXPECT_LE(max_err, precision / 2 + 1e-15);
  }
}

TEST(QuantizedCodecTest, TotalBitsIsTheExactBitstreamWidth) {
  const Matrix a = RandomMatrix(9, 5, 77);
  auto q = QuantizeMatrix(a, 1e-3);
  ASSERT_TRUE(q.ok());
  auto payload = EncodeQuantizedPayload(*q);
  ASSERT_TRUE(payload.ok());
  // Payload = 1 encoding byte + 36-byte header + the packed bitstream,
  // which is exactly ceil(total_bits / 8) bytes.
  const size_t header = 1 + 4 + 8 + 8 + 8 + 8;
  EXPECT_EQ(payload->size(), header + (q->total_bits + 7) / 8);
  EXPECT_EQ(q->total_bits, q->bits_per_entry * a.size());
}

TEST(QuantizedCodecTest, ZeroRowMatrixEncodes) {
  const Matrix a(0, 6);
  auto q = QuantizeMatrix(a, 1e-3);
  ASSERT_TRUE(q.ok());
  auto payload = EncodeQuantizedPayload(*q);
  ASSERT_TRUE(payload.ok());
  auto decoded = DecodeMatrixPayload(payload->data(), payload->size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->matrix.rows(), 0u);
  EXPECT_EQ(decoded->matrix.cols(), 6u);
}

TEST(QuantizedCodecTest, RejectsMangledBodies) {
  const Matrix a = RandomMatrix(4, 4, 5);
  auto q = QuantizeMatrix(a, 1e-4);
  ASSERT_TRUE(q.ok());
  auto payload = EncodeQuantizedPayload(*q);
  ASSERT_TRUE(payload.ok());

  // Truncation anywhere fails decode.
  for (const size_t cut : {size_t{3}, size_t{20}, payload->size() - 1}) {
    EXPECT_FALSE(DecodeMatrixPayload(payload->data(), cut).ok()) << cut;
  }
  {  // Wrong body magic.
    std::vector<uint8_t> bad = *payload;
    bad[1] ^= 0xFF;
    EXPECT_FALSE(DecodeMatrixPayload(bad.data(), bad.size()).ok());
  }
  {  // Trailing garbage.
    std::vector<uint8_t> bad = *payload;
    bad.push_back(0xAA);
    EXPECT_FALSE(DecodeMatrixPayload(bad.data(), bad.size()).ok());
  }
  {  // bits_per_entry out of range.
    std::vector<uint8_t> bad = *payload;
    const uint64_t bogus = 64;
    std::memcpy(bad.data() + 1 + 4 + 16, &bogus, sizeof(bogus));
    EXPECT_FALSE(DecodeMatrixPayload(bad.data(), bad.size()).ok());
  }
}

TEST(QuantizedCodecTest, RejectsNonzeroPaddingBits) {
  // 3 entries at some odd bits_per_entry leaves padding bits in the last
  // byte; a flipped padding bit must not decode as a clean payload.
  const Matrix a = RandomMatrix(1, 3, 8);
  auto q = QuantizeMatrix(a, 1e-4);
  ASSERT_TRUE(q.ok());
  auto payload = EncodeQuantizedPayload(*q);
  ASSERT_TRUE(payload.ok());
  const uint64_t pad_bits = 8 * ((q->total_bits + 7) / 8) - q->total_bits;
  if (pad_bits == 0) GTEST_SKIP() << "shape leaves no padding";
  std::vector<uint8_t> bad = *payload;
  bad.back() ^= 0x80;  // highest bit of the final byte is padding
  EXPECT_FALSE(DecodeMatrixPayload(bad.data(), bad.size()).ok());
}

TEST(UpperTriangleTest, PackUnpackRoundTrip) {
  const size_t d = 7;
  Matrix g(d, d);
  Rng rng(3);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) {
      g(i, j) = rng.NextGaussian();
      g(j, i) = g(i, j);
    }
  }
  const Matrix packed = PackUpperTriangle(g);
  EXPECT_EQ(packed.rows(), 1u);
  EXPECT_EQ(packed.size(), d * (d + 1) / 2);
  auto back = UnpackUpperTriangle(packed, d);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(BitExactEqual(g, *back));
  // Size mismatch is rejected.
  EXPECT_FALSE(UnpackUpperTriangle(packed, d + 1).ok());
}

}  // namespace
}  // namespace wire
}  // namespace distsketch
