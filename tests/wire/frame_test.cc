#include "wire/frame.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wire/checksum.h"

namespace distsketch {
namespace wire {
namespace {

Frame TestFrame() {
  Frame f;
  f.tag = "local_sketch";
  f.from = 3;
  f.to = -1;  // the coordinator
  f.attempt = 2;
  f.payload = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  return f;
}

void ExpectRejects(const std::vector<uint8_t>& buf, const char* substring) {
  auto decoded = DecodeFrame(buf.data(), buf.size());
  ASSERT_FALSE(decoded.ok()) << "expected rejection: " << substring;
  EXPECT_NE(decoded.status().message().find(substring), std::string::npos)
      << decoded.status().message();
}

TEST(FrameTest, RoundTripPreservesEverything) {
  const Frame f = TestFrame();
  const std::vector<uint8_t> buf = EncodeFrame(f);
  EXPECT_EQ(buf.size(), kFrameHeaderBytes + f.tag.size() + f.payload.size());
  auto decoded = DecodeFrame(buf.data(), buf.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->tag, f.tag);
  EXPECT_EQ(decoded->from, f.from);
  EXPECT_EQ(decoded->to, f.to);
  EXPECT_EQ(decoded->attempt, f.attempt);
  EXPECT_EQ(decoded->payload, f.payload);
}

TEST(FrameTest, EmptyPayloadAndTagRoundTrip) {
  Frame f;
  const std::vector<uint8_t> buf = EncodeFrame(f);
  EXPECT_EQ(buf.size(), kFrameHeaderBytes);
  auto decoded = DecodeFrame(buf.data(), buf.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->tag.empty());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(FrameTest, EveryStrictPrefixFailsDecode) {
  const std::vector<uint8_t> buf = EncodeFrame(TestFrame());
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_FALSE(DecodeFrame(buf.data(), cut).ok()) << "prefix " << cut;
  }
}

TEST(FrameTest, RejectsBadMagic) {
  std::vector<uint8_t> buf = EncodeFrame(TestFrame());
  buf[0] ^= 0x01;
  ExpectRejects(buf, "bad magic");
}

TEST(FrameTest, RejectsBadVersion) {
  std::vector<uint8_t> buf = EncodeFrame(TestFrame());
  const uint16_t wrong = kFrameVersion + 1;
  std::memcpy(buf.data() + 4, &wrong, sizeof(wrong));
  ExpectRejects(buf, "bad version");
}

TEST(FrameTest, RejectsLengthMismatch) {
  std::vector<uint8_t> buf = EncodeFrame(TestFrame());
  buf.push_back(0);  // trailing byte: header length no longer matches
  ExpectRejects(buf, "length mismatch");
}

TEST(FrameTest, RejectsTamperedTag) {
  const Frame f = TestFrame();
  std::vector<uint8_t> buf = EncodeFrame(f);
  buf[kFrameHeaderBytes] ^= 0xFF;  // first tag byte
  ExpectRejects(buf, "tag id mismatch");
}

TEST(FrameTest, ChecksumCatchesEverySingleBitFlipInPayload) {
  const Frame f = TestFrame();
  const std::vector<uint8_t> clean = EncodeFrame(f);
  const size_t payload_off = kFrameHeaderBytes + f.tag.size();
  for (size_t i = payload_off; i < clean.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> buf = clean;
      buf[i] ^= static_cast<uint8_t>(1u << bit);
      ExpectRejects(buf, "checksum mismatch");
    }
  }
}

TEST(FrameTest, WireTagIdIsStableAndDiscriminates) {
  EXPECT_EQ(WireTagId("local_sketch"), WireTagId("local_sketch"));
  EXPECT_NE(WireTagId("local_sketch"), WireTagId("local_mass"));
  // FNV-1a 32 of the empty string is the offset basis.
  EXPECT_EQ(WireTagId(""), 0x811C9DC5u);
}

TEST(ChecksumTest, MatchesXxh64EmptyVectorAndSeparatesInputs) {
  // Published XXH64 vector: empty input, seed 0.
  EXPECT_EQ(Checksum64(nullptr, 0), 0xEF46DB3751D8E999ull);
  const uint8_t a[] = {1, 2, 3, 4};
  const uint8_t b[] = {1, 2, 3, 5};
  EXPECT_EQ(Checksum64(a, 4), Checksum64(a, 4));
  EXPECT_NE(Checksum64(a, 4), Checksum64(b, 4));
  EXPECT_NE(Checksum64(a, 4), Checksum64(a, 3));
  EXPECT_NE(Checksum64(a, 4, /*seed=*/1), Checksum64(a, 4, /*seed=*/2));
}

}  // namespace
}  // namespace wire
}  // namespace distsketch
