#include "workload/generators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/svd.h"

namespace distsketch {
namespace {

TEST(GeneratorsTest, LowRankPlusNoiseShapeAndSpectrum) {
  const Matrix a = GenerateLowRankPlusNoise({.rows = 60,
                                             .cols = 20,
                                             .rank = 4,
                                             .decay = 0.5,
                                             .top_singular_value = 50.0,
                                             .noise_stddev = 0.0,
                                             .seed = 1});
  EXPECT_EQ(a.rows(), 60u);
  EXPECT_EQ(a.cols(), 20u);
  auto svals = SingularValues(a);
  ASSERT_TRUE(svals.ok());
  EXPECT_NEAR((*svals)[0], 50.0, 1e-6);
  EXPECT_NEAR((*svals)[1], 25.0, 1e-6);
  EXPECT_NEAR((*svals)[3], 6.25, 1e-6);
  EXPECT_NEAR((*svals)[4], 0.0, 1e-6);
}

TEST(GeneratorsTest, NoiseRaisesTail) {
  const Matrix clean = GenerateLowRankPlusNoise(
      {.rows = 60, .cols = 20, .rank = 4, .noise_stddev = 0.0, .seed = 2});
  const Matrix noisy = GenerateLowRankPlusNoise(
      {.rows = 60, .cols = 20, .rank = 4, .noise_stddev = 0.5, .seed = 2});
  auto sc = SingularValues(clean);
  auto sn = SingularValues(noisy);
  ASSERT_TRUE(sc.ok());
  ASSERT_TRUE(sn.ok());
  EXPECT_LT((*sc)[10], 1e-6);
  EXPECT_GT((*sn)[10], 0.1);
}

TEST(GeneratorsTest, DeterministicForSeed) {
  const Matrix a = GenerateLowRankPlusNoise({.seed = 7});
  const Matrix b = GenerateLowRankPlusNoise({.seed = 7});
  EXPECT_TRUE(a == b);
  const Matrix c = GenerateLowRankPlusNoise({.seed = 8});
  EXPECT_FALSE(a == c);
}

TEST(GeneratorsTest, ZipfSpectrumFollowsPowerLaw) {
  const Matrix a = GenerateZipfSpectrum({.rows = 50,
                                         .cols = 16,
                                         .alpha = 1.0,
                                         .top_singular_value = 32.0,
                                         .seed = 3});
  auto svals = SingularValues(a);
  ASSERT_TRUE(svals.ok());
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR((*svals)[i], 32.0 / static_cast<double>(i + 1), 1e-6);
  }
}

TEST(GeneratorsTest, SignMatrixEntriesAndMass) {
  const Matrix a = GenerateSignMatrix(30, 10, 4);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a.data()[i] == 1.0 || a.data()[i] == -1.0);
  }
  // ||A||_F^2 = rows * cols exactly (the lower-bound instance property).
  EXPECT_DOUBLE_EQ(SquaredFrobeniusNorm(a), 300.0);
}

TEST(GeneratorsTest, SparseDensity) {
  const Matrix a = GenerateSparse(
      {.rows = 200, .cols = 50, .density = 0.1, .seed = 5});
  size_t nonzeros = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != 0.0) ++nonzeros;
  }
  const double observed =
      static_cast<double>(nonzeros) / static_cast<double>(a.size());
  EXPECT_NEAR(observed, 0.1, 0.02);
}

TEST(GeneratorsTest, ClusteredDataHasLabelsAndVariance) {
  const ClusteredData data = GenerateClusteredGaussian({.rows = 200,
                                                        .cols = 12,
                                                        .num_clusters = 3,
                                                        .center_scale = 20.0,
                                                        .within_stddev = 0.5,
                                                        .seed = 6});
  EXPECT_EQ(data.data.rows(), 200u);
  EXPECT_EQ(data.labels.size(), 200u);
  for (size_t l : data.labels) EXPECT_LT(l, 3u);
  // Between-cluster variance dominates: top singular values well above
  // the within-cluster scale.
  auto svals = SingularValues(data.data);
  ASSERT_TRUE(svals.ok());
  EXPECT_GT((*svals)[0], 10.0 * (*svals)[5]);
}

TEST(GeneratorsTest, RandomOrthonormalIsOrthonormal) {
  const Matrix q = RandomOrthonormal(8, 9);
  EXPECT_TRUE(HasOrthonormalColumns(q, 1e-10));
  EXPECT_EQ(q.rows(), 8u);
  EXPECT_EQ(q.cols(), 8u);
}

TEST(GeneratorsTest, QuantizeToIntegersRoundsAndClamps) {
  Matrix a{{1.4, -2.6, 100.0}};
  QuantizeToIntegers(a, 10.0);
  EXPECT_EQ(a(0, 0), 1.0);
  EXPECT_EQ(a(0, 1), -3.0);
  EXPECT_EQ(a(0, 2), 10.0);
}

TEST(GeneratorsTest, DocumentTermCountsAndShape) {
  const Matrix docs = GenerateDocumentTerm({.docs = 200,
                                            .vocab = 40,
                                            .topics = 3,
                                            .length = 60,
                                            .zipf_alpha = 1.1,
                                            .seed = 11});
  EXPECT_EQ(docs.rows(), 200u);
  EXPECT_EQ(docs.cols(), 40u);
  // Entries are non-negative integers (word counts).
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_GE(docs.data()[i], 0.0);
    EXPECT_EQ(docs.data()[i], std::floor(docs.data()[i]));
  }
  // Document lengths are in [length/2, 3*length/2].
  for (size_t i = 0; i < docs.rows(); ++i) {
    double total = 0.0;
    for (size_t j = 0; j < docs.cols(); ++j) total += docs(i, j);
    EXPECT_GE(total, 30.0);
    EXPECT_LE(total, 90.0);
  }
}

TEST(GeneratorsTest, DocumentTermHasLowEffectiveRank) {
  // 3 topics => the spectrum concentrates in a few directions.
  const Matrix docs = GenerateDocumentTerm({.docs = 300,
                                            .vocab = 40,
                                            .topics = 3,
                                            .length = 80,
                                            .seed = 12});
  auto svals = SingularValues(docs);
  ASSERT_TRUE(svals.ok());
  double head = 0.0, total = 0.0;
  for (size_t i = 0; i < svals->size(); ++i) {
    const double e = (*svals)[i] * (*svals)[i];
    if (i < 4) head += e;
    total += e;
  }
  EXPECT_GT(head / total, 0.8);
}

TEST(GeneratorsTest, GaussianMomentsRoughlyCorrect) {
  const Matrix a = GenerateGaussian(100, 100, 2.0, 10);
  const double mean_sq = SquaredFrobeniusNorm(a) / 10000.0;
  EXPECT_NEAR(mean_sq, 4.0, 0.2);
}

}  // namespace
}  // namespace distsketch
