#include "workload/partition.h"

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "workload/generators.h"
#include "workload/row_stream.h"

namespace distsketch {
namespace {

class PartitionSchemeTest : public ::testing::TestWithParam<PartitionScheme> {
};

TEST_P(PartitionSchemeTest, ConservesRowsAndCovariance) {
  const Matrix a = GenerateGaussian(53, 7, 1.0, 1);
  const auto parts = PartitionRows(a, 5, GetParam(), /*seed=*/11);
  ASSERT_EQ(parts.size(), 5u);
  size_t total = 0;
  for (const auto& p : parts) {
    total += p.rows();
    EXPECT_EQ(p.cols(), 7u);
  }
  EXPECT_EQ(total, 53u);
  // Covariance is partition-invariant: sum of local Grams = global Gram.
  Matrix sum(7, 7);
  for (const auto& p : parts) {
    if (p.rows() > 0) sum = Add(sum, Gram(p));
  }
  EXPECT_TRUE(AlmostEqual(sum, Gram(a), 1e-10));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PartitionSchemeTest,
                         ::testing::Values(PartitionScheme::kRoundRobin,
                                           PartitionScheme::kContiguous,
                                           PartitionScheme::kSkewed,
                                           PartitionScheme::kRandom,
                                           PartitionScheme::kZipf));

TEST(PartitionTest, ContiguousPreservesOrder) {
  const Matrix a{{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  const auto parts = PartitionRows(a, 2, PartitionScheme::kContiguous);
  EXPECT_EQ(parts[0](0, 0), 1.0);
  EXPECT_EQ(parts[0](1, 0), 2.0);
  EXPECT_EQ(parts[1](0, 0), 3.0);
  const Matrix back = UnpartitionRows(parts);
  EXPECT_TRUE(back == a);
}

TEST(PartitionTest, RoundRobinInterleaves) {
  const Matrix a{{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  const auto parts = PartitionRows(a, 2, PartitionScheme::kRoundRobin);
  EXPECT_EQ(parts[0](0, 0), 1.0);
  EXPECT_EQ(parts[0](1, 0), 3.0);
  EXPECT_EQ(parts[1](0, 0), 2.0);
}

TEST(PartitionTest, SkewedFirstServerLargest) {
  const Matrix a = GenerateGaussian(64, 3, 1.0, 2);
  const auto parts = PartitionRows(a, 4, PartitionScheme::kSkewed);
  EXPECT_GE(parts[0].rows(), parts[1].rows());
  EXPECT_GE(parts[1].rows(), parts[2].rows());
}

TEST(ZipfPartitionTest, SharesAreMonotoneAndExhaustive) {
  const Matrix a = GenerateGaussian(200, 3, 1.0, 7);
  for (const double alpha : {0.5, 1.0, 2.0}) {
    const auto parts = PartitionRowsZipf(a, 8, alpha);
    ASSERT_EQ(parts.size(), 8u);
    size_t total = 0;
    for (size_t p = 0; p < parts.size(); ++p) {
      total += parts[p].rows();
      if (p > 0) {
        EXPECT_GE(parts[p - 1].rows(), parts[p].rows())
            << "alpha=" << alpha << " p=" << p;
      }
    }
    EXPECT_EQ(total, 200u) << "alpha=" << alpha;
  }
  // Larger alpha concentrates more rows on server 0.
  EXPECT_LT(PartitionRowsZipf(a, 8, 0.5)[0].rows(),
            PartitionRowsZipf(a, 8, 2.0)[0].rows());
}

TEST(ZipfPartitionTest, AlphaZeroDegeneratesToEqualBlocks) {
  const Matrix a = GenerateGaussian(64, 2, 1.0, 9);
  const auto zipf = PartitionRowsZipf(a, 4, 0.0);
  const auto contiguous = PartitionRows(a, 4, PartitionScheme::kContiguous);
  ASSERT_EQ(zipf.size(), contiguous.size());
  for (size_t p = 0; p < zipf.size(); ++p) {
    EXPECT_EQ(zipf[p].rows(), contiguous[p].rows());
  }
}

TEST(ZipfPartitionTest, BlocksAreContiguousAndDeterministic) {
  const Matrix a{{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {6, 0}, {7, 0}};
  const auto parts = PartitionRowsZipf(a, 3, 1.0);
  // Contiguous: reassembly in server order is the original matrix.
  EXPECT_TRUE(UnpartitionRows(parts) == a);
  const auto again = PartitionRowsZipf(a, 3, 1.0);
  for (size_t p = 0; p < parts.size(); ++p) {
    EXPECT_EQ(parts[p].rows(), again[p].rows());
  }
}

TEST(ZipfPartitionTest, SchemeEnumDelegatesToExponentOne) {
  const Matrix a = GenerateGaussian(100, 2, 1.0, 3);
  const auto via_scheme = PartitionRows(a, 6, PartitionScheme::kZipf);
  const auto direct = PartitionRowsZipf(a, 6, 1.0);
  ASSERT_EQ(via_scheme.size(), direct.size());
  for (size_t p = 0; p < direct.size(); ++p) {
    EXPECT_EQ(via_scheme[p].rows(), direct[p].rows()) << "p=" << p;
  }
}

TEST(ZipfPartitionTest, MoreServersThanRowsLeavesTailEmpty) {
  const Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const auto parts = PartitionRowsZipf(a, 10, 1.5);
  size_t total = 0;
  for (const auto& p : parts) total += p.rows();
  EXPECT_EQ(total, 3u);
  // Largest-remainder rounding keeps the heavy shards in front.
  EXPECT_GE(parts[0].rows(), parts[9].rows());
}

TEST(PartitionTest, MoreServersThanRows) {
  const Matrix a{{1, 2}, {3, 4}};
  const auto parts = PartitionRows(a, 5, PartitionScheme::kContiguous);
  size_t total = 0;
  for (const auto& p : parts) total += p.rows();
  EXPECT_EQ(total, 2u);
}

TEST(RowStreamTest, SinglePassSemantics) {
  const Matrix a{{1, 2}, {3, 4}, {5, 6}};
  RowStream stream(a);
  EXPECT_EQ(stream.dim(), 2u);
  EXPECT_EQ(stream.total(), 3u);
  size_t count = 0;
  double first = 0.0;
  while (stream.HasNext()) {
    auto row = stream.Next();
    if (count == 0) first = row[0];
    ++count;
  }
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(first, 1.0);
  EXPECT_EQ(stream.consumed(), 3u);
  EXPECT_FALSE(stream.HasNext());
}

}  // namespace
}  // namespace distsketch
