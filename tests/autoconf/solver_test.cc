// The constraint solver against the committed calibration artifact:
// determinism (byte-identical PlanSummary), goal-flag routing
// (deterministic-only, arbitrary partition, k > 0), the calibrated
// eps-relaxation, budget feasibility/headroom semantics, and the E13
// scenario — one goal under three different budgets yields three
// different configurations, each respecting its budget.

#include "autoconf/solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "autoconf/calibration.h"
#include "autoconf/config_plan.h"
#include "autoconf/error_predictor.h"

namespace distsketch {
namespace autoconf {
namespace {

const ErrorPredictor& CommittedPredictor() {
  static const ErrorPredictor* predictor = [] {
    auto loaded = ErrorPredictor::LoadFromFile(DS_AUTOCONF_CALIBRATION);
    if (!loaded.ok()) {
      ADD_FAILURE() << "cannot load committed calibration: "
                    << loaded.status().ToString();
      std::abort();
    }
    return new ErrorPredictor(std::move(*loaded));
  }();
  return *predictor;
}

AutoConfRequest BaseRequest() {
  AutoConfRequest request;
  request.goal.eps = 0.05;
  request.goal.delta = 0.01;
  request.shape.num_servers = 16;
  request.shape.dim = 32;
  request.shape.total_rows = 1024;
  return request;
}

std::string ConfigKey(const SketchConfig& config) {
  return config.family + "/" + std::to_string(config.sketch_rows) + "/q" +
         std::to_string(config.quantize_bits) + "/t" +
         std::to_string(static_cast<int>(config.topology.kind)) + "x" +
         std::to_string(config.topology.fanout);
}

TEST(SolverTest, PlanSummaryIsByteIdenticalAcrossCalls) {
  const AutoConfRequest request = BaseRequest();
  auto a = SolveSketchConfig(request, &CommittedPredictor());
  auto b = SolveSketchConfig(request, &CommittedPredictor());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(PlanSummary(*a).empty());
  EXPECT_EQ(PlanSummary(*a), PlanSummary(*b));
}

TEST(SolverTest, UnconstrainedPlanIsFeasibleWithErrorGoalBinding) {
  auto plan = SolveSketchConfig(BaseRequest(), &CommittedPredictor());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan->feasible());
  EXPECT_EQ(plan->best().binding, BindingConstraint::kErrorGoal);
  EXPECT_TRUE(std::isinf(plan->best().headroom));
  // Every candidate's certified error meets the goal.
  for (const ConfigCandidate& c : plan->ranked) {
    EXPECT_LE(c.error.Certified(true), BaseRequest().goal.eps + 1e-12)
        << c.rationale;
    EXPECT_FALSE(c.rationale.empty());
  }
}

TEST(SolverTest, CalibratedRelaxationBeatsAnalyticSizing) {
  AutoConfRequest request = BaseRequest();
  auto trusted = SolveSketchConfig(request, &CommittedPredictor());
  request.trust_calibration = false;
  auto analytic = SolveSketchConfig(request, &CommittedPredictor());
  ASSERT_TRUE(trusted.ok());
  ASSERT_TRUE(analytic.ok());
  ASSERT_TRUE(trusted->feasible());
  ASSERT_TRUE(analytic->feasible());
  // On the calibrated low-rank spectrum the solver certifies a relaxed
  // working_eps — strictly cheaper than sizing from the worst-case bound.
  EXPECT_GT(trusted->best().config.working_eps, request.goal.eps);
  EXPECT_LT(trusted->best().cost.total_words,
            analytic->best().cost.total_words);
  // Distrusting calibration pins working_eps to the goal.
  for (const ConfigCandidate& c : analytic->ranked) {
    EXPECT_DOUBLE_EQ(c.config.working_eps, request.goal.eps);
  }
}

TEST(SolverTest, DeterministicGoalRestrictsToDeterministicFamilies) {
  AutoConfRequest request = BaseRequest();
  request.goal.allow_randomized = false;
  auto plan = SolveSketchConfig(request, &CommittedPredictor());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_FALSE(plan->ranked.empty());
  for (const ConfigCandidate& c : plan->ranked) {
    EXPECT_TRUE(c.config.family == "fd_merge" ||
                c.config.family == "exact_gram")
        << c.config.family;
  }
}

TEST(SolverTest, ArbitraryPartitionPlansCountSketchOnly) {
  AutoConfRequest request = BaseRequest();
  request.goal.arbitrary_partition = true;
  auto plan = SolveSketchConfig(request, &CommittedPredictor());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_FALSE(plan->ranked.empty());
  for (const ConfigCandidate& c : plan->ranked) {
    EXPECT_EQ(c.config.family, "countsketch");
  }
  // Deterministic + arbitrary partition is unsatisfiable (only the
  // randomized linear sketch survives entry-wise sharding).
  request.goal.allow_randomized = false;
  auto none = SolveSketchConfig(request, &CommittedPredictor());
  EXPECT_EQ(none.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SolverTest, RankGoalUsesRankAwareFamilies) {
  AutoConfRequest request = BaseRequest();
  request.goal.k = 4;
  request.goal.eps = 0.2;
  auto plan = SolveSketchConfig(request, &CommittedPredictor());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_FALSE(plan->ranked.empty());
  std::set<std::string> families;
  for (const ConfigCandidate& c : plan->ranked) {
    families.insert(c.config.family);
    EXPECT_EQ(c.config.k, 4u);
  }
  for (const std::string& family : families) {
    EXPECT_TRUE(family == "fd_merge" || family == "exact_gram" ||
                family == "adaptive_sketch")
        << family;
  }
}

TEST(SolverTest, OffSpecShapeWidensBandsAndCurbsRelaxation) {
  // The calibration measured one 1024 x 32 workload. A request whose
  // shape is far from that (the band says nothing about it) must not
  // inherit the full relaxation certified at the calibrated shape: the
  // band widens 2x per departing axis, so the ladder stops at a
  // strictly tighter working_eps while every candidate still certifies
  // the goal.
  const AutoConfRequest at_spec_request = BaseRequest();
  AutoConfRequest off_spec_request = BaseRequest();
  off_spec_request.shape.dim = 2048;
  off_spec_request.shape.total_rows = 10000000;
  auto at_spec = SolveSketchConfig(at_spec_request, &CommittedPredictor());
  auto off_spec = SolveSketchConfig(off_spec_request, &CommittedPredictor());
  ASSERT_TRUE(at_spec.ok()) << at_spec.status().ToString();
  ASSERT_TRUE(off_spec.ok()) << off_spec.status().ToString();
  auto fd_eps = [](const ConfigPlan& plan) {
    double eps = 0.0;
    for (const ConfigCandidate& c : plan.ranked) {
      if (c.config.family == "fd_merge") {
        eps = std::max(eps, c.config.working_eps);
      }
    }
    return eps;
  };
  EXPECT_LT(fd_eps(*off_spec), fd_eps(*at_spec));
  EXPECT_GT(fd_eps(*at_spec), at_spec_request.goal.eps);
  for (const ConfigCandidate& c : off_spec->ranked) {
    EXPECT_LE(c.error.Certified(true), off_spec_request.goal.eps + 1e-12)
        << c.rationale;
  }
}

TEST(SolverTest, ImpossibleBudgetReportsInfeasibleWithHeadroom) {
  AutoConfRequest request = BaseRequest();
  request.budget.max_coordinator_words = 10;  // far below any config
  auto plan = SolveSketchConfig(request, &CommittedPredictor());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->feasible());
  ASSERT_FALSE(plan->ranked.empty());
  for (const ConfigCandidate& c : plan->ranked) {
    EXPECT_FALSE(c.feasible);
    EXPECT_LT(c.headroom, 1.0);
    EXPECT_GT(c.headroom, 0.0);
  }
  // The least-violating candidate ranks first.
  for (size_t i = 1; i < plan->ranked.size(); ++i) {
    EXPECT_GE(plan->ranked.front().headroom, plan->ranked[i].headroom - 1e-12);
  }
}

TEST(SolverTest, SolverWorksWithoutAPredictor) {
  auto plan = SolveSketchConfig(BaseRequest(), nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan->feasible());
  for (const ConfigCandidate& c : plan->ranked) {
    // No calibration: working_eps cannot relax past the goal.
    EXPECT_DOUBLE_EQ(c.config.working_eps, BaseRequest().goal.eps);
    EXPECT_FALSE(c.error.calibrated);
  }
}

TEST(SolverTest, RejectsMalformedInputs) {
  AutoConfRequest request = BaseRequest();
  request.shape.dim = 0;
  EXPECT_EQ(SolveSketchConfig(request, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  request = BaseRequest();
  request.goal.eps = 0.0;
  EXPECT_EQ(SolveSketchConfig(request, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

// E13: the same (eps = 0.05, delta = 0.01) goal under three budgets.
// Each budget is derived from the unconstrained plan's own cost table:
// the limit is set just above the cheapest candidate along that axis, so
// only configs shaped for that axis fit. The three winners must respect
// their budgets and cannot all be the same configuration.
TEST(SolverTest, SameGoalThreeBudgetsThreeConfigs) {
  const AutoConfRequest base = BaseRequest();
  auto open = SolveSketchConfig(base, &CommittedPredictor());
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  ASSERT_TRUE(open->feasible());

  double min_coord = 1e300, min_bytes = 1e300, min_path = 1e300;
  for (const ConfigCandidate& c : open->ranked) {
    min_coord = std::min(min_coord, c.cost.coordinator_words);
    min_bytes = std::min(min_bytes, c.cost.total_wire_bytes);
    min_path = std::min(min_path, c.cost.critical_path_words);
  }

  AutoConfRequest tight_coord = base;
  tight_coord.budget.max_coordinator_words =
      static_cast<uint64_t>(min_coord * 1.05) + 1;
  AutoConfRequest tight_bytes = base;
  tight_bytes.budget.max_total_wire_bytes =
      static_cast<uint64_t>(min_bytes * 1.05) + 1;
  AutoConfRequest tight_path = base;
  tight_path.budget.max_critical_path_words =
      static_cast<uint64_t>(min_path * 1.05) + 1;

  auto coord = SolveSketchConfig(tight_coord, &CommittedPredictor());
  auto bytes = SolveSketchConfig(tight_bytes, &CommittedPredictor());
  auto path = SolveSketchConfig(tight_path, &CommittedPredictor());
  ASSERT_TRUE(coord.ok() && bytes.ok() && path.ok());
  ASSERT_TRUE(coord->feasible()) << PlanSummary(*coord);
  ASSERT_TRUE(bytes->feasible()) << PlanSummary(*bytes);
  ASSERT_TRUE(path->feasible()) << PlanSummary(*path);

  // Usage respects the budget and the budgeted axis is the binding one.
  EXPECT_LE(coord->best().cost.coordinator_words,
            static_cast<double>(tight_coord.budget.max_coordinator_words));
  EXPECT_EQ(coord->best().binding, BindingConstraint::kCoordinatorWords);
  EXPECT_LE(bytes->best().cost.total_wire_bytes,
            static_cast<double>(tight_bytes.budget.max_total_wire_bytes));
  EXPECT_EQ(bytes->best().binding, BindingConstraint::kWireBytes);
  EXPECT_LE(path->best().cost.critical_path_words,
            static_cast<double>(tight_path.budget.max_critical_path_words));
  EXPECT_EQ(path->best().binding, BindingConstraint::kCriticalPath);

  const std::set<std::string> winners = {ConfigKey(coord->best().config),
                                         ConfigKey(bytes->best().config),
                                         ConfigKey(path->best().config)};
  EXPECT_GE(winners.size(), 2u)
      << "coord: " << coord->best().rationale
      << "\nbytes: " << bytes->best().rationale
      << "\npath: " << path->best().rationale;
}

}  // namespace
}  // namespace autoconf
}  // namespace distsketch
