#include "autoconf/error_predictor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "autoconf/calibration.h"

namespace distsketch {
namespace autoconf {
namespace {

// A tiny synthetic 2x2 grid (one family) with known values, so the
// interpolation math is checkable by hand.
CalibrationTable TinyTable() {
  CalibrationTable table;
  table.spec.eps_grid = {0.1, 0.4};
  table.spec.servers_grid = {4, 16};
  table.spec.families = {"fd_merge"};
  table.spec.seeds = {1, 2};
  table.spec.band_margin = 1.5;
  auto add = [&](double eps, size_t s, double err, double words,
                 double bytes) {
    CalibrationPoint p;
    p.family = "fd_merge";
    p.eps = eps;
    p.s = s;
    p.rel_err_mean = err;
    p.rel_err_min = err / 2.0;
    p.rel_err_max = err * 2.0;
    p.words = words;
    p.bits = words * 64.0;
    p.coord_words = words;
    p.wire_bytes = bytes;
    return table.points.push_back(p);
  };
  add(0.1, 4, 1e-3, 1000.0, 9000.0);
  add(0.1, 16, 1e-3, 4000.0, 36000.0);
  add(0.4, 4, 1e-2, 250.0, 2250.0);
  add(0.4, 16, 1e-2, 1000.0, 9000.0);
  return table;
}

TEST(ErrorPredictorTest, ExactGridPointReproducesMeasurement) {
  auto predictor = ErrorPredictor::FromTable(TinyTable());
  ASSERT_TRUE(predictor.ok());
  const ErrorPrediction pred = predictor->PredictError("fd_merge", 0.1, 4, 0.1);
  EXPECT_TRUE(pred.calibrated);
  EXPECT_DOUBLE_EQ(pred.predicted, 1e-3);
  // Band = observed [min, max] widened by the margin.
  EXPECT_DOUBLE_EQ(pred.lo, (1e-3 / 2.0) / 1.5);
  EXPECT_DOUBLE_EQ(pred.hi, (1e-3 * 2.0) * 1.5);
  EXPECT_DOUBLE_EQ(pred.analytic, 0.1);
}

TEST(ErrorPredictorTest, InterpolatesInLogSpaceBetweenEpsPoints) {
  auto predictor = ErrorPredictor::FromTable(TinyTable());
  ASSERT_TRUE(predictor.ok());
  // Geometric midpoint of the eps grid: sqrt(0.1 * 0.4) = 0.2; the
  // log-linear prediction is the geometric mean of the endpoint errors.
  const ErrorPrediction pred =
      predictor->PredictError("fd_merge", 0.2, 4, 0.2);
  EXPECT_TRUE(pred.calibrated);
  EXPECT_NEAR(pred.predicted, std::sqrt(1e-3 * 1e-2), 1e-12);
  // Between grid points the band is the corner envelope (only widens).
  EXPECT_DOUBLE_EQ(pred.lo, (1e-3 / 2.0) / 1.5);
  EXPECT_DOUBLE_EQ(pred.hi, (1e-2 * 2.0) * 1.5);
}

TEST(ErrorPredictorTest, OffGridQueriesClampAndWidenTheBand) {
  auto predictor = ErrorPredictor::FromTable(TinyTable());
  ASSERT_TRUE(predictor.ok());
  const ErrorPrediction on = predictor->PredictError("fd_merge", 0.1, 4, 0.1);
  const ErrorPrediction off =
      predictor->PredictError("fd_merge", 0.05, 4, 0.05);
  // Clamped to the eps = 0.1 edge: same central value, 2x wider band.
  EXPECT_DOUBLE_EQ(off.predicted, on.predicted);
  EXPECT_DOUBLE_EQ(off.hi, on.hi * 2.0);
  EXPECT_DOUBLE_EQ(off.lo, on.lo / 2.0);
}

TEST(ErrorPredictorTest, OffSpecShapesWidenTheBand) {
  auto predictor = ErrorPredictor::FromTable(TinyTable());
  ASSERT_TRUE(predictor.ok());
  const ErrorPrediction base = predictor->PredictError("fd_merge", 0.1, 4, 0.1);
  // The calibration workload shape itself (spec default 1024 x 32) and
  // anything within the 4x tolerance window predict the same band.
  const ErrorPrediction at_spec =
      predictor->PredictError("fd_merge", 0.1, 4, 0.1, 1024, 32);
  EXPECT_DOUBLE_EQ(at_spec.hi, base.hi);
  EXPECT_DOUBLE_EQ(at_spec.lo, base.lo);
  const ErrorPrediction near =
      predictor->PredictError("fd_merge", 0.1, 4, 0.1, 4096, 128);
  EXPECT_DOUBLE_EQ(near.hi, base.hi);
  // One axis far off the calibrated shape: band doubles. Both axes: 4x.
  const ErrorPrediction rows_off =
      predictor->PredictError("fd_merge", 0.1, 4, 0.1, 10000000, 32);
  EXPECT_DOUBLE_EQ(rows_off.predicted, base.predicted);
  EXPECT_DOUBLE_EQ(rows_off.hi, base.hi * 2.0);
  EXPECT_DOUBLE_EQ(rows_off.lo, base.lo / 2.0);
  const ErrorPrediction both_off =
      predictor->PredictError("fd_merge", 0.1, 4, 0.1, 10000000, 2048);
  EXPECT_DOUBLE_EQ(both_off.hi, base.hi * 4.0);
  // Departure counts in either direction (a tiny instance is just as far
  // from the calibration evidence as a huge one).
  const ErrorPrediction tiny =
      predictor->PredictError("fd_merge", 0.1, 4, 0.1, 64, 4);
  EXPECT_DOUBLE_EQ(tiny.hi, base.hi * 4.0);
}

TEST(ErrorPredictorTest, SingleEntryGridClampsOnBothSides) {
  // A one-entry servers grid must flag queries on *either* side of the
  // lone point as clamped (widened band), not just below it.
  CalibrationTable table = TinyTable();
  table.spec.servers_grid = {4};
  table.points.clear();
  auto add = [&](double eps, double err) {
    CalibrationPoint p;
    p.family = "fd_merge";
    p.eps = eps;
    p.s = 4;
    p.rel_err_mean = err;
    p.rel_err_min = err / 2.0;
    p.rel_err_max = err * 2.0;
    p.words = 1000.0;
    p.bits = 64000.0;
    p.coord_words = 1000.0;
    p.wire_bytes = 9000.0;
    table.points.push_back(p);
  };
  add(0.1, 1e-3);
  add(0.4, 1e-2);
  auto predictor = ErrorPredictor::FromTable(table);
  ASSERT_TRUE(predictor.ok());
  const ErrorPrediction on = predictor->PredictError("fd_merge", 0.1, 4, 0.1);
  const ErrorPrediction above =
      predictor->PredictError("fd_merge", 0.1, 16, 0.1);
  const ErrorPrediction below = predictor->PredictError("fd_merge", 0.1, 2, 0.1);
  EXPECT_DOUBLE_EQ(above.hi, on.hi * 2.0);
  EXPECT_DOUBLE_EQ(below.hi, on.hi * 2.0);
}

TEST(ErrorPredictorTest, UnknownFamilyFallsBackToAnalytic) {
  auto predictor = ErrorPredictor::FromTable(TinyTable());
  ASSERT_TRUE(predictor.ok());
  const ErrorPrediction pred =
      predictor->PredictError("no_such_family", 0.1, 4, 0.1);
  EXPECT_FALSE(pred.calibrated);
  EXPECT_DOUBLE_EQ(pred.predicted, 0.1);
  EXPECT_DOUBLE_EQ(pred.Certified(true), 0.1);
}

TEST(ErrorPredictorTest, CertifiedNeverExceedsTheAnalyticBound) {
  ErrorPrediction pred;
  pred.calibrated = true;
  pred.predicted = 0.3;
  pred.hi = 0.5;
  pred.analytic = 0.2;
  // Calibration claims worse than the guarantee: the guarantee wins.
  EXPECT_DOUBLE_EQ(pred.Certified(true), 0.2);
  pred.hi = 0.05;
  EXPECT_DOUBLE_EQ(pred.Certified(true), 0.05);
  // Distrusted calibration always falls back to the analytic bound.
  EXPECT_DOUBLE_EQ(pred.Certified(false), 0.2);
}

TEST(ErrorPredictorTest, BytesPerWordInterpolatesWireMeasurements) {
  auto predictor = ErrorPredictor::FromTable(TinyTable());
  ASSERT_TRUE(predictor.ok());
  // Every grid point in TinyTable has 9 bytes/word.
  EXPECT_NEAR(predictor->BytesPerWord("fd_merge", 0.2, 8), 9.0, 1e-9);
  EXPECT_DOUBLE_EQ(predictor->BytesPerWord("no_such_family", 0.2, 8), 0.0);
  EXPECT_NEAR(predictor->BitsPerWord("fd_merge", 0.1, 4), 64.0, 1e-9);
}

TEST(ErrorPredictorTest, RejectsEmptyOrNonPositiveTables) {
  EXPECT_FALSE(ErrorPredictor::FromTable(CalibrationTable{}).ok());
  CalibrationTable bad = TinyTable();
  bad.points[0].rel_err_mean = 0.0;
  EXPECT_FALSE(ErrorPredictor::FromTable(bad).ok());
}

TEST(CalibrationJsonTest, RoundTripsByteIdentically) {
  CalibrationTable table = TinyTable();
  const std::string json = CalibrationTableToJson(table);
  auto parsed = ParseCalibrationJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // %.17g round-trip: re-encoding the parsed table reproduces the bytes.
  EXPECT_EQ(CalibrationTableToJson(*parsed), json);
  EXPECT_EQ(parsed->points.size(), table.points.size());
  EXPECT_DOUBLE_EQ(parsed->points[0].rel_err_mean,
                   table.points[0].rel_err_mean);
  EXPECT_EQ(parsed->spec.families, table.spec.families);
}

TEST(CalibrationJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseCalibrationJson("").ok());
  EXPECT_FALSE(ParseCalibrationJson("{}").ok());
  EXPECT_FALSE(ParseCalibrationJson("{\"version\": 2}").ok());
  // Grid/point count mismatch.
  CalibrationTable table = TinyTable();
  table.points.pop_back();
  EXPECT_FALSE(ParseCalibrationJson(CalibrationTableToJson(table)).ok());
}

TEST(CalibrationDiffTest, FlagsDriftBeyondTolerance) {
  CalibrationTable committed = TinyTable();
  CalibrationTable fresh = TinyTable();
  EXPECT_TRUE(DiffCalibrationTables(committed, fresh, 0.10).empty());
  fresh.points[0].rel_err_mean *= 1.25;
  const auto drift = DiffCalibrationTables(committed, fresh, 0.10);
  ASSERT_EQ(drift.size(), 1u);
  EXPECT_NE(drift[0].find("rel_err_mean"), std::string::npos);
  EXPECT_TRUE(DiffCalibrationTables(committed, fresh, 0.30).empty());
}

}  // namespace
}  // namespace autoconf
}  // namespace distsketch
