// The acceptance gate for the auto-configurer front door: a client
// states a goal (eps = 0.05, delta = 0.01) plus a coordinator-inbound
// budget over the service wire; the service solves, provisions the
// tenant, and echoes the plan. The test then (a) replays the planned
// protocol on a real 8-server cluster and checks the measured error
// meets the goal while the metered CommLog respects the budget, and
// (b) ingests the same workload through the service and checks the
// tenant's queried sketch meets the goal too.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "autoconf/calibration.h"
#include "autoconf/error_predictor.h"
#include "autoconf/protocol_factory.h"
#include "autoconf/solver.h"
#include "dist/cluster.h"
#include "dist/comm_log.h"
#include "dist/merge_topology.h"
#include "dist/protocol.h"
#include "linalg/blas.h"
#include "service/service_runner.h"
#include "service/service_wire.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

using autoconf::AutoConfRequest;
using autoconf::BuildProtocol;
using autoconf::ConfigForFamilyKey;
using autoconf::DefaultCalibrationSpec;
using autoconf::ErrorPredictor;
using autoconf::SketchConfig;
using autoconf::SolveSketchConfig;

constexpr size_t kServers = 8;
constexpr size_t kDim = 32;
constexpr size_t kRows = 1024;
constexpr double kGoalEps = 0.05;

const ErrorPredictor& Predictor() {
  static const ErrorPredictor* predictor = [] {
    auto loaded = ErrorPredictor::LoadFromFile(DS_AUTOCONF_CALIBRATION);
    if (!loaded.ok()) {
      ADD_FAILURE() << loaded.status().ToString();
      std::abort();
    }
    return new ErrorPredictor(std::move(*loaded));
  }();
  return *predictor;
}

// The calibration workload at the e2e shape: the spectrum the committed
// bands certify.
Matrix Workload(uint64_t seed) {
  const auto spec = DefaultCalibrationSpec();
  LowRankPlusNoiseOptions options;
  options.rows = kRows;
  options.cols = kDim;
  options.rank = spec.rank;
  options.decay = spec.decay;
  options.top_singular_value = spec.top_singular_value;
  options.noise_stddev = spec.noise_stddev;
  options.seed = seed;
  return GenerateLowRankPlusNoise(options);
}

// A meaningful coordinator-words budget for the goal: 2x the cheapest
// plan's predicted inbound words — tight enough that the solver must
// pick a communication-shaped config, loose enough to stay feasible.
uint64_t CoordinatorBudget() {
  AutoConfRequest request;
  request.goal.eps = kGoalEps;
  request.goal.delta = 0.01;
  request.shape = {kServers, kDim, kRows};
  auto plan = SolveSketchConfig(request, &Predictor());
  DS_CHECK(plan.ok() && plan->feasible());
  double min_coord = plan->ranked.front().cost.coordinator_words;
  for (const auto& c : plan->ranked) {
    min_coord = std::min(min_coord, c.cost.coordinator_words);
  }
  return static_cast<uint64_t>(min_coord * 2.0) + 1;
}

TEST(ConfigureE2ETest, FrontDoorProvisionsAConfigThatMeetsGoalAndBudget) {
  const uint64_t budget = CoordinatorBudget();

  ServiceRunnerOptions options;
  options.service.tenant = TenantOptions{.dim = kDim, .eps = 0.25,
                                         .epoch_rows = 64};
  options.service.predictor = &Predictor();
  options.service.max_tenants = 8;
  options.service.max_resident = 8;
  options.channel.peer_queue_capacity = 64;
  auto runner = ServiceRunner::Create(options);
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();

  ConfigureParams params;
  params.eps = kGoalEps;
  params.delta = 0.01;
  params.budget_coordinator_words = budget;
  params.num_servers = kServers;
  params.dim = kDim;
  params.expected_rows = kRows;
  params.epoch_rows = 128;

  std::vector<ServiceResponse> answers;
  auto collect = [&answers](const ServiceResponse& r) { answers.push_back(r); };
  ASSERT_TRUE((*runner)->SubmitConfigure(0, "front-door", params, collect).ok());
  (*runner)->Drain();
  ASSERT_EQ(answers.size(), 1u);
  ASSERT_EQ(answers[0].code, StatusCode::kOk) << answers[0].tenant;
  const ConfigSummary& solved = answers[0].config;
  ASSERT_TRUE(solved.present);
  // The tenant ingest path is an unquantized FD sketch, so the service
  // certifies (and provisions) a plain fd_merge plan even when another
  // family tops the overall ranking.
  EXPECT_EQ(solved.family, "fd_merge");
  EXPECT_EQ(solved.quantize_bits, 0u);
  EXPECT_GE(solved.working_eps, kGoalEps);
  // The echoed rationale respects the budget and names it as binding.
  EXPECT_LE(solved.coordinator_words, static_cast<double>(budget));
  EXPECT_EQ(solved.binding,
            static_cast<uint8_t>(autoconf::BindingConstraint::kCoordinatorWords));
  // The stated band certifies the goal.
  EXPECT_LE(solved.error_hi, kGoalEps + 1e-12);

  // (a) Replay the plan on a real cluster: the echoed ConfigSummary is
  // enough to rebuild the exact protocol the solver priced.
  const Matrix a = Workload(/*seed=*/29);
  SketchConfig config = ConfigForFamilyKey(solved.family, solved.working_eps);
  config.topology.kind = static_cast<TopologyKind>(solved.topology);
  config.topology.fanout = solved.fanout;
  auto cluster = Cluster::Create(
      PartitionRows(a, kServers, PartitionScheme::kRoundRobin),
      solved.working_eps);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto protocol = BuildProtocol(config, /*seed=*/29);
  ASSERT_TRUE(protocol.ok()) << protocol.status().ToString();
  auto result = (*protocol)->Run(*cluster);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const double rel_err =
      CovarianceError(a, result->sketch) / SquaredFrobeniusNorm(a);
  EXPECT_LE(rel_err, kGoalEps) << "family " << solved.family << " @ eps "
                               << solved.working_eps;
  EXPECT_LE(cluster->log().WordsReceivedBy(kCoordinator), budget);

  // (b) The provisioned tenant itself: ingest the workload through the
  // service, query, and check the goal on the tenant's sketch.
  for (const Matrix& chunk :
       PartitionRows(a, 4, PartitionScheme::kContiguous)) {
    ASSERT_TRUE((*runner)->SubmitIngest(0, "front-door", chunk, collect).ok());
  }
  ASSERT_TRUE((*runner)
                  ->Submit(0, EncodeQueryRequest("front-door"), collect)
                  .ok());
  (*runner)->Drain();
  ASSERT_EQ(answers.size(), 6u);
  for (size_t i = 1; i < 5; ++i) {
    ASSERT_EQ(answers[i].code, StatusCode::kOk) << "ingest chunk " << i;
  }
  ASSERT_EQ(answers[5].code, StatusCode::kOk);
  EXPECT_EQ(answers[5].rows_ingested, kRows);
  const double tenant_rel_err =
      CovarianceError(a, answers[5].sketch) / SquaredFrobeniusNorm(a);
  EXPECT_LE(tenant_rel_err, kGoalEps);

  // Re-configuring a provisioned tenant is refused, not silently resized.
  answers.clear();
  ASSERT_TRUE((*runner)->SubmitConfigure(0, "front-door", params, collect).ok());
  (*runner)->Drain();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].code, StatusCode::kFailedPrecondition);
}

TEST(ConfigureE2ETest, InfeasibleBudgetAnswersFailedPreconditionWithPlan) {
  ServiceRunnerOptions options;
  options.service.tenant = TenantOptions{.dim = kDim, .eps = 0.25,
                                         .epoch_rows = 64};
  options.service.predictor = &Predictor();
  options.service.max_tenants = 8;
  options.service.max_resident = 8;
  auto runner = ServiceRunner::Create(options);
  ASSERT_TRUE(runner.ok());

  ConfigureParams params;
  params.eps = kGoalEps;
  params.delta = 0.01;
  params.budget_coordinator_words = 3;  // nothing fits
  params.num_servers = kServers;
  params.dim = kDim;
  params.expected_rows = kRows;

  std::vector<ServiceResponse> answers;
  auto collect = [&answers](const ServiceResponse& r) { answers.push_back(r); };
  ASSERT_TRUE((*runner)->SubmitConfigure(0, "hopeless", params, collect).ok());
  (*runner)->Drain();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].code, StatusCode::kFailedPrecondition);
  // The least-violating candidate is still echoed so the client can see
  // how far off the budget is.
  EXPECT_TRUE(answers[0].config.present);
  EXPECT_GT(answers[0].config.coordinator_words, 3.0);
  // No tenant was provisioned.
  EXPECT_EQ((*runner)->service().known_tenants(), 0u);

  // Configure without a budget still works (error goal alone binds).
  params.budget_coordinator_words = 0;
  answers.clear();
  ASSERT_TRUE((*runner)->SubmitConfigure(0, "hopeless", params, collect).ok());
  (*runner)->Drain();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].code, StatusCode::kOk);
  EXPECT_EQ(answers[0].config.binding,
            static_cast<uint8_t>(autoconf::BindingConstraint::kErrorGoal));
  EXPECT_EQ((*runner)->service().known_tenants(), 1u);
}

TEST(ConfigureE2ETest, ArbitraryPartitionGoalsAreRefused) {
  // Only a linear sketch answers correctly when A is shard-summed
  // entry-wise; the tenant ingest path absorbs whole rows into FD, so
  // the front door must refuse rather than provision a tenant whose
  // responses would be semantically wrong under that partition model.
  ServiceRunnerOptions options;
  options.service.tenant = TenantOptions{.dim = kDim, .eps = 0.25,
                                         .epoch_rows = 64};
  options.service.predictor = &Predictor();
  options.service.max_tenants = 8;
  options.service.max_resident = 8;
  auto runner = ServiceRunner::Create(options);
  ASSERT_TRUE(runner.ok());

  ConfigureParams params;
  params.eps = kGoalEps;
  params.delta = 0.01;
  params.arbitrary_partition = true;
  params.num_servers = kServers;
  params.dim = kDim;
  params.expected_rows = kRows;

  std::vector<ServiceResponse> answers;
  auto collect = [&answers](const ServiceResponse& r) { answers.push_back(r); };
  ASSERT_TRUE((*runner)->SubmitConfigure(0, "entrywise", params, collect).ok());
  (*runner)->Drain();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].code, StatusCode::kFailedPrecondition);
  EXPECT_FALSE(answers[0].config.present);
  EXPECT_EQ((*runner)->service().known_tenants(), 0u);
}

}  // namespace
}  // namespace distsketch
