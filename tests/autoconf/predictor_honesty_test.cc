// Predictor honesty (satellite of the auto-configurer): for every grid
// point of the committed calibration artifact, re-run the calibration
// experiment live and assert the measured error falls inside the band
// the predictor states at that point. This is the contract the solver's
// eps-relaxation leans on — if a protocol change shifts measured errors,
// this test (and the CI drift gate) fails before the solver can certify
// configs the hardware no longer delivers.

#include <gtest/gtest.h>

#include <string>

#include "autoconf/calibration.h"
#include "autoconf/error_predictor.h"

namespace distsketch {
namespace autoconf {
namespace {

TEST(PredictorHonestyTest, EveryGridPointMeasuresInsideTheStatedBand) {
  auto table = LoadCalibrationTable(DS_AUTOCONF_CALIBRATION);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  auto predictor = ErrorPredictor::FromTable(*table);
  ASSERT_TRUE(predictor.ok()) << predictor.status().ToString();

  size_t checked = 0;
  for (const CalibrationPoint& point : table->points) {
    const ErrorPrediction pred =
        predictor->PredictError(point.family, point.eps, point.s,
                                /*analytic_rel=*/point.eps);
    ASSERT_TRUE(pred.calibrated) << point.family;
    for (uint64_t seed : table->spec.seeds) {
      auto live = MeasureCalibrationPoint(table->spec, point.family,
                                          point.eps, point.s, seed);
      ASSERT_TRUE(live.ok()) << point.family << " eps=" << point.eps
                             << " s=" << point.s << ": "
                             << live.status().ToString();
      EXPECT_GE(live->rel_err, pred.lo)
          << point.family << " eps=" << point.eps << " s=" << point.s
          << " seed=" << seed;
      EXPECT_LE(live->rel_err, pred.hi)
          << point.family << " eps=" << point.eps << " s=" << point.s
          << " seed=" << seed;
      ++checked;
    }
  }
  // 7 families x 3 eps x 2 s x 3 seeds.
  EXPECT_EQ(checked, table->points.size() * table->spec.seeds.size());
}

TEST(PredictorHonestyTest, CommittedTableMatchesAFreshSweep) {
  auto committed = LoadCalibrationTable(DS_AUTOCONF_CALIBRATION);
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  auto fresh = RunCalibrationSweep(committed->spec);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  const auto drift = DiffCalibrationTables(*committed, *fresh, 0.10);
  EXPECT_TRUE(drift.empty()) << drift.front();
}

}  // namespace
}  // namespace autoconf
}  // namespace distsketch
