// Experiment T2 — reproduces Table 2 of the paper: communication costs of
// distributed PCA.
//
//   | algorithm | communication (words)                              |
//   | [5]       | O(skd + (s k / eps^2) min{d, k/eps^2})             |
//   | New       | O(skd + (sqrt(s log d) k / eps) min{d, k/eps^2})   |
//
// The [5] comparator is the distributed subspace-iteration proxy described
// in DESIGN.md; "New" is the Theorem 9 sketch-and-solve. We also include
// the older O(skd/eps) FD-PCA baseline for context, and verify every
// protocol actually reaches (1+O(eps)) projection error.

#include <cstdio>

#include "bench/bench_util.h"
#include "pca/distributed_power_iteration.h"
#include "pca/fd_pca.h"
#include "pca/pca_quality.h"
#include "pca/sketch_and_solve.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

using bench::MakeCluster;
using bench::Section;

void PrintRow(const char* algo, size_t s, double eps, uint64_t words,
              double ratio) {
  std::printf(
      "  %-22s s=%-4zu eps=%-5.3g words=%-10llu proj_err/opt=%.3f\n", algo,
      s, eps, static_cast<unsigned long long>(words), ratio);
}

void RunPoint(const Matrix& a, size_t s, double eps, size_t k) {
  Cluster cluster = MakeCluster(a, s, eps);

  FdPcaProtocol fd({.k = k, .eps = eps});
  auto fd_result = fd.Run(cluster);
  DS_CHECK(fd_result.ok());
  PrintRow("fd_pca [22]", s, eps, fd_result->comm.total_words,
           EvaluatePcaQuality(a, fd_result->components).ratio);

  PowerIterationPcaOptions base_options;
  base_options.k = k;
  base_options.eps = eps;
  base_options.seed = 31;
  DistributedPowerIterationPca baseline(base_options);
  auto base_result = baseline.Run(cluster);
  DS_CHECK(base_result.ok());
  PrintRow("[5]-proxy (batch)", s, eps, base_result->comm.total_words,
           EvaluatePcaQuality(a, base_result->components).ratio);

  SketchAndSolvePca ours_collect(
      {.k = k, .eps = eps, .mode = SolveMode::kCollect, .seed = 41});
  auto collect_result = ours_collect.Run(cluster);
  DS_CHECK(collect_result.ok());
  PrintRow("new (collect)", s, eps, collect_result->comm.total_words,
           EvaluatePcaQuality(a, collect_result->components).ratio);

  SketchAndSolvePca ours_auto(
      {.k = k, .eps = eps, .mode = SolveMode::kAuto, .seed = 43});
  auto auto_result = ours_auto.Run(cluster);
  DS_CHECK(auto_result.ok());
  PrintRow("new (Thm 9, auto)", s, eps, auto_result->comm.total_words,
           EvaluatePcaQuality(a, auto_result->components).ratio);
}

}  // namespace
}  // namespace distsketch

int main() {
  using distsketch::GenerateLowRankPlusNoise;
  std::printf("T2: Table 2 reproduction — distributed PCA costs (d=64, k=4)\n");
  const auto a = GenerateLowRankPlusNoise({.rows = 4096,
                                           .cols = 64,
                                           .rank = 8,
                                           .decay = 0.6,
                                           .top_singular_value = 100.0,
                                           .noise_stddev = 0.5,
                                           .seed = 1});
  distsketch::bench::Section("words vs s (eps = 0.2)");
  for (size_t s : {4u, 16u, 64u}) {
    distsketch::RunPoint(a, s, 0.2, 4);
  }
  distsketch::bench::Section("words vs eps (s = 16)");
  for (double eps : {0.4, 0.2, 0.1}) {
    distsketch::RunPoint(a, 16, eps, 4);
  }
  std::printf(
      "\nExpected shape: the eps-dependent term of [5] grows ~1/eps^2 "
      "while 'new' grows ~1/eps with a sqrt(s)/s advantage; both are "
      "dominated by the skd term at small eps*d.\n");
  return 0;
}
