// E11: multi-tenant service ingest throughput. Sweeps tenant count x
// batch size through the full request path (encode -> channel -> wire
// frame -> decode -> per-tenant FD absorb -> epoch seal) and emits two
// BENCH_sketch.json rows per configuration:
//
//   op "service_ingest"      wall_ms of the whole run (n = total rows;
//                            rows/sec = n / wall_ms * 1000)
//   op "service_ingest_p99"  wall_ms = p99 latency of one submit+drain
//                            request cycle
//
// Columns: d = row dimension, s = tenants, l = rows per batch. `--smoke`
// runs one tiny configuration for the perf-smoke CTest label.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "service/service_runner.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

constexpr size_t kDim = 32;

struct Config {
  size_t tenants;
  size_t batch_rows;
  size_t rounds;
};

void BenchConfig(const Config& cfg, bench::BenchJsonWriter& writer) {
  ServiceRunnerOptions options;
  options.service = {
      .tenant = {.dim = kDim, .eps = 0.2, .epoch_rows = 4 * cfg.batch_rows},
      .max_tenants = cfg.tenants,
      .max_resident = cfg.tenants};
  options.channel.peer_queue_capacity = 2 * cfg.tenants + 16;
  auto runner = ServiceRunner::Create(options);
  DS_CHECK(runner.ok());
  ServiceRunner& svc = **runner;

  // Pre-generate one batch per tenant; every round re-submits it (the
  // bench measures the ingest path, not the generator).
  std::vector<Matrix> batches;
  batches.reserve(cfg.tenants);
  for (size_t t = 0; t < cfg.tenants; ++t) {
    batches.push_back(GenerateGaussian(cfg.batch_rows, kDim, 1.0, 1 + t));
  }
  std::vector<std::string> names;
  names.reserve(cfg.tenants);
  for (size_t t = 0; t < cfg.tenants; ++t) {
    names.push_back("t" + std::to_string(t));
  }

  // Warm-up round: admit every tenant so the measured rounds exercise
  // steady-state ingest, not registry setup.
  for (size_t t = 0; t < cfg.tenants; ++t) {
    DS_CHECK(svc.SubmitIngest(static_cast<int>(t), names[t], batches[t],
                              nullptr)
                 .ok());
  }
  svc.Drain();

  // Throughput: submit one batch per tenant per round, drain per round
  // (the service handles each round as one parallel batch).
  uint64_t ok = 0;
  bench::WallTimer total;
  for (size_t round = 0; round < cfg.rounds; ++round) {
    for (size_t t = 0; t < cfg.tenants; ++t) {
      Status s = svc.SubmitIngest(
          static_cast<int>(t), names[t], batches[t],
          [&ok](const ServiceResponse& r) {
            if (r.code == StatusCode::kOk) ++ok;
          });
      DS_CHECK(s.ok());
    }
    svc.Drain();
  }
  const double wall_ms = total.ElapsedMs();
  const uint64_t rows = cfg.rounds * cfg.tenants * cfg.batch_rows;
  DS_CHECK(ok == cfg.rounds * cfg.tenants);

  // Latency: p99 of single-request submit+drain cycles, round-robin
  // across tenants (each cycle is one framed request through the wire
  // and one batch of size 1 in the service).
  const size_t probes = std::min<size_t>(512, 4 * cfg.tenants);
  std::vector<double> lat_ms;
  lat_ms.reserve(probes);
  for (size_t p = 0; p < probes; ++p) {
    const size_t t = p % cfg.tenants;
    bench::WallTimer one;
    DS_CHECK(svc.SubmitIngest(static_cast<int>(t), names[t], batches[t],
                              nullptr)
                 .ok());
    svc.Drain();
    lat_ms.push_back(one.ElapsedMs());
  }
  std::sort(lat_ms.begin(), lat_ms.end());
  const double p99 = lat_ms[(lat_ms.size() * 99) / 100];

  const CommStats stats = svc.log().Stats();
  bench::BenchRecord rec;
  rec.op = "service_ingest";
  rec.n = rows;
  rec.d = kDim;
  rec.s = cfg.tenants;
  rec.l = cfg.batch_rows;
  rec.threads = ThreadPool::GlobalThreads();
  rec.wall_ms = wall_ms;
  rec.words = stats.total_words;
  rec.wire_bytes = stats.total_wire_bytes;
  writer.Add(rec);
  bench::BenchRecord p99_rec = rec;
  p99_rec.op = "service_ingest_p99";
  p99_rec.wall_ms = p99;
  writer.Add(p99_rec);

  std::printf(
      "service_ingest tenants=%5zu batch=%3zu rounds=%zu  "
      "rows/sec=%10.0f  p99=%.3f ms\n",
      cfg.tenants, cfg.batch_rows, cfg.rounds, rows / wall_ms * 1000.0, p99);
}

}  // namespace
}  // namespace distsketch

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  distsketch::bench::BenchJsonWriter writer;
  std::vector<distsketch::Config> configs;
  if (smoke) {
    configs = {{8, 4, 2}};
  } else {
    configs = {{16, 8, 8},   {16, 64, 8},  {256, 8, 4},
               {256, 64, 4}, {1024, 8, 2}, {1024, 64, 2}};
  }
  for (const auto& cfg : configs) {
    distsketch::BenchConfig(cfg, writer);
  }
  return 0;
}
