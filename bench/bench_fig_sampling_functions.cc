// Experiment F3 — ablation of the SVS sampling function (§3.1.2):
// linear g (Theorem 5) vs quadratic g with the small-singular-value drop
// (Theorem 6), plus a quadratic variant *without* the drop, the design
// choice the proof of Theorem 6 motivates (unbounded M when tiny singular
// values survive with tiny probability and huge rescaling).
//
// For each function we report expected/measured sampled rows (the
// communication), achieved covariance error against the alpha*||A||_F^2
// budget, and worst-case row rescale (the M of Theorem 4).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "sketch/svs.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

// Quadratic sampling WITHOUT the threshold drop: the ablated variant.
class QuadraticNoDrop : public SamplingFunction {
 public:
  explicit QuadraticNoDrop(const SamplingFunctionParams& p)
      : inner_(p) {}
  double Probability(double x) const override {
    // Same curvature, no drop: min(b x^2, 1) for every x > 0.
    const double b = inner_.b();
    if (x <= 0.0) return 0.0;
    return std::min(b * x * x, 1.0);
  }
  const char* Name() const override { return "quadratic_no_drop"; }

 private:
  QuadraticSamplingFunction inner_;
};

struct Outcome {
  double mean_rows = 0.0;
  double mean_err = 0.0;
  double worst_err = 0.0;
  double worst_rescale = 0.0;  // max w_j^2 / sigma_j^2 = 1/g over sampled
};

Outcome RunDistributed(const Matrix& a, size_t s, const SamplingFunction& g,
                       uint64_t seed) {
  const auto parts = PartitionRows(a, s, PartitionScheme::kRoundRobin);
  Outcome out;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    Matrix b(0, a.cols());
    size_t rows = 0;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (parts[i].rows() == 0) continue;
      auto r = Svs(parts[i], g, Rng::DeriveSeed(seed + t, i));
      DS_CHECK(r.ok());
      rows += r->sketch.rows();
      // Track the largest rescale factor actually shipped.
      for (size_t j = 0; j < r->sketch.rows(); ++j) {
        out.worst_rescale =
            std::max(out.worst_rescale, SquaredNorm2(r->sketch.Row(j)));
      }
      b.AppendRows(r->sketch);
    }
    const double err =
        b.rows() > 0 ? CovarianceError(a, b) : SquaredFrobeniusNorm(a);
    out.mean_rows += static_cast<double>(rows);
    out.mean_err += err;
    out.worst_err = std::max(out.worst_err, err);
  }
  out.mean_rows /= trials;
  out.mean_err /= trials;
  return out;
}

}  // namespace
}  // namespace distsketch

int main() {
  using namespace distsketch;
  std::printf(
      "F3: sampling-function ablation (Thm 5 linear vs Thm 6 quadratic vs "
      "quadratic-without-drop)\n\n");
  const size_t s = 16;
  const size_t d = 48;
  const Matrix a = GenerateZipfSpectrum({.rows = 2048,
                                         .cols = d,
                                         .alpha = 1.0,
                                         .top_singular_value = 100.0,
                                         .seed = 1});
  const double f2 = SquaredFrobeniusNorm(a);
  std::printf("  workload: zipf spectrum, n=2048 d=%zu s=%zu\n\n", d, s);
  std::printf("  %-20s %-8s %-10s %-12s %-12s %-12s\n", "g", "alpha",
              "rows", "mean err/b", "worst err/b", "max row |.|^2");
  for (double alpha : {0.2, 0.1, 0.05}) {
    SamplingFunctionParams params;
    params.num_servers = s;
    params.alpha = alpha;
    params.total_frobenius = f2;
    params.dim = d;
    params.delta = 0.1;
    const double budget = alpha * f2;

    const LinearSamplingFunction lin(params);
    const QuadraticSamplingFunction quad(params);
    const QuadraticNoDrop nodrop(params);
    for (const SamplingFunction* g :
         {static_cast<const SamplingFunction*>(&lin),
          static_cast<const SamplingFunction*>(&quad),
          static_cast<const SamplingFunction*>(&nodrop)}) {
      const Outcome o = RunDistributed(a, s, *g, 100);
      std::printf("  %-20s %-8.3g %-10.1f %-12.3f %-12.3f %-12.3g\n",
                  g->Name(), alpha, o.mean_rows, o.mean_err / budget,
                  o.worst_err / budget, o.worst_rescale);
    }
    std::printf("\n");
  }
  std::printf(
      "  Reading: quadratic samples fewer rows than linear at equal error "
      "(the sqrt(log d) gap of Thm 6 vs Thm 5). Dropping the threshold "
      "(no_drop) inflates the worst shipped row mass (the unbounded M of "
      "Thm 4's bound), which is why Thm 6 zeroes tiny singular values.\n");
  return 0;
}
