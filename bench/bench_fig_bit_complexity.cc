// Experiment F5 — §3.3 bit/word complexity:
//  (a) case rank(A) <= 2k: the exact O(skd)-word protocol vs FD-merge and
//      the trivial O(sd^2) Gram exchange on the same low-rank instance;
//  (b) case rank(A) > 2k: payload rounding at poly^{-1}(nd/eps)
//      precision — exact bits on the wire vs the real-number convention,
//      with the covariance guarantee certified after rounding.

#include <cstdio>

#include "bench/bench_util.h"
#include "dist/adaptive_sketch_protocol.h"
#include "dist/exact_gram_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "dist/low_rank_exact_protocol.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

using bench::MakeCluster;
using bench::Section;

void LowRankCase() {
  Section("case 1: rank(A) <= 2k — exact protocol at O(skd) words");
  const size_t k = 4;
  const size_t d = 64;
  const size_t s = 16;
  Matrix a = GenerateLowRankPlusNoise({.rows = 2048,
                                       .cols = d,
                                       .rank = 2 * k,
                                       .decay = 0.8,
                                       .top_singular_value = 40.0,
                                       .noise_stddev = 0.0,
                                       .seed = 1});
  Cluster cluster = MakeCluster(a, s, 0.1);

  LowRankExactProtocol exact_lr({.k = k});
  auto lr = exact_lr.Run(cluster);
  DS_CHECK(lr.ok());
  std::printf("  %-16s words=%-10llu coverr/|A|F2=%.2e (exact)\n",
              "low_rank_exact",
              static_cast<unsigned long long>(lr->comm.total_words),
              CovarianceError(a, lr->sketch) / SquaredFrobeniusNorm(a));

  FdMergeProtocol fd({.eps = 0.1, .k = k});
  auto fd_result = fd.Run(cluster);
  DS_CHECK(fd_result.ok());
  std::printf("  %-16s words=%-10llu coverr/|A|F2=%.2e\n", "fd_merge",
              static_cast<unsigned long long>(fd_result->comm.total_words),
              CovarianceError(a, fd_result->sketch) /
                  SquaredFrobeniusNorm(a));

  ExactGramProtocol gram;
  auto gram_result = gram.Run(cluster);
  DS_CHECK(gram_result.ok());
  std::printf("  %-16s words=%-10llu coverr/|A|F2=%.2e (trivial O(sd^2))\n",
              "exact_gram",
              static_cast<unsigned long long>(gram_result->comm.total_words),
              CovarianceError(a, gram_result->sketch) /
                  SquaredFrobeniusNorm(a));
  std::printf("  theory: skd = %zu, sd^2 = %zu\n", s * k * d, s * d * d);
}

void RoundingCase() {
  Section("case 2: rank(A) > 2k — §3.3 payload rounding, bits on the wire");
  const size_t k = 4;
  const double eps = 0.2;
  // Integer input per the paper's model.
  Matrix a = GenerateGaussian(2048, 48, 4.0, 2);
  QuantizeToIntegers(a, 64.0);
  const double budget = SketchErrorBudget(a, 3.0 * eps, k);

  for (size_t s : {8u, 32u}) {
    Cluster cluster = MakeCluster(a, s, eps);
    const uint64_t word_bits = cluster.cost_model().bits_per_word();

    AdaptiveSketchProtocol plain({.eps = eps, .k = k, .seed = 7});
    auto p = plain.Run(cluster);
    DS_CHECK(p.ok());

    AdaptiveSketchProtocol quantized(
        {.eps = eps, .k = k, .quantize = true, .seed = 7});
    auto q = quantized.Run(cluster);
    DS_CHECK(q.ok());

    // Three accounting conventions for the same sketch payload:
    //   doubles  — shipping raw IEEE doubles (the "real number" cost the
    //              paper's footnote 1 points out is unbounded in
    //              principle; 64 bits here);
    //   words    — the paper's O(log(nd/eps))-bit machine-word model;
    //   rounded  — exact bits after §3.3 fixed-point rounding.
    std::printf(
        "  s=%-3zu word=%llub | doubles=%-11llu word-model=%-11llu "
        "rounded=%-11llu bits   err/budget=%.3f\n",
        s, static_cast<unsigned long long>(word_bits),
        static_cast<unsigned long long>(p->comm.total_words * 64),
        static_cast<unsigned long long>(p->comm.total_bits),
        static_cast<unsigned long long>(q->comm.total_bits),
        CovarianceError(a, q->sketch) / budget);
  }
  std::printf(
      "  Reading: §3.3 rounding certifies a finite bit count within a "
      "small factor of the word-model assumption and below the raw-double "
      "cost, while the covariance guarantee survives (Lemma 7 ensures the "
      "tail energy of integer inputs with rank > 2k cannot be small "
      "enough for the rounding to matter).\n");
}

}  // namespace
}  // namespace distsketch

int main() {
  std::printf("F5: §3.3 bit complexity\n");
  distsketch::LowRankCase();
  distsketch::RoundingCase();
  return 0;
}
