// Experiment E1 (extension) — continuous distributed tracking, the
// monitoring model of Ghashami-Phillips-Li [17] that the paper lists in
// §1.5 with the open question "whether our techniques can be used to
// improve the communication costs of their algorithms".
//
// We run the tracking protocol with two sync payloads — the plain FD
// delta sketch ([17]-style) and the same delta compressed through
// Decomp + SVS (the paper's §3.2 machinery) — over streams with different
// spectral decay, and report total words, sync count and the worst
// error ratio observed over all checkpoints.

#include <cstdio>

#include "monitor/continuous_tracking.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

void RunCase(const char* label, const Matrix& a, size_t s, double eps,
             size_t k) {
  for (const auto payload :
       {SyncPayload::kDeltaSketch, SyncPayload::kSvsCompressed}) {
    TrackingOptions options;
    options.eps = eps;
    options.k = k;
    options.payload = payload;
    auto result = RunTrackingSimulation(a, s, options, 128);
    DS_CHECK(result.ok());
    std::printf(
        "  %-24s payload=%-14s words=%-9llu syncs=%-5llu worst "
        "err/mass=%.3f (target %.2f)\n",
        label,
        payload == SyncPayload::kDeltaSketch ? "delta_sketch"
                                             : "svs_compressed",
        static_cast<unsigned long long>(result->total_words),
        static_cast<unsigned long long>(result->num_syncs),
        result->worst_error_ratio, eps);
  }
}

}  // namespace
}  // namespace distsketch

int main() {
  using namespace distsketch;
  std::printf(
      "E1 (extension): continuous tracking [17] with and without SVS "
      "payload compression (s=8, eps=0.25, k=3)\n\n");

  const Matrix low_rank = GenerateLowRankPlusNoise({.rows = 4096,
                                                    .cols = 24,
                                                    .rank = 4,
                                                    .decay = 0.6,
                                                    .top_singular_value =
                                                        40.0,
                                                    .noise_stddev = 0.2,
                                                    .seed = 1});
  RunCase("low-rank stream", low_rank, 8, 0.25, 3);

  const Matrix zipf = GenerateZipfSpectrum(
      {.rows = 4096, .cols = 24, .alpha = 1.0, .seed = 2});
  RunCase("zipf stream", zipf, 8, 0.25, 3);

  const Matrix flat = GenerateGaussian(4096, 24, 1.0, 3);
  RunCase("flat (gaussian) stream", flat, 8, 0.25, 3);

  std::printf(
      "\n  Reading: SVS payload compression roughly halves monitoring "
      "words at unchanged tracked error — each sync's delta tail is tiny "
      "relative to the whole stream, so the quadratic sampling function "
      "drops most of it. This answers §1.5's open question (can the "
      "paper's techniques improve [17]?) in the affirmative for this "
      "regime.\n");
  return 0;
}
