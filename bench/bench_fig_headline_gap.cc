// Experiment F1 — the intro's headline separation: with s = d servers and
// covariance-error budget ||A||_F^2 / d (i.e. eps = 1/d), the
// deterministic algorithm of [27] and plain row sampling [10] both cost
// O(d^3) words, while the paper's randomized SVS algorithm costs
// O(d^{2.5} sqrt(log d)). We meter real protocols at s = d over a range of
// d and fit log-log slopes: expect ~3 for the deterministic/sampling
// costs and ~2.5 for SVS.

#include <cstdio>

#include "bench/bench_util.h"
#include "dist/fd_merge_protocol.h"
#include "dist/row_sampling_protocol.h"
#include "dist/svs_protocol.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

using bench::LogLogSlope;
using bench::MakeCluster;

}  // namespace
}  // namespace distsketch

int main() {
  using namespace distsketch;
  std::printf(
      "F1: headline gap at s=d, error ||A||_F^2/d — O(d^3) deterministic "
      "vs O(d^2.5) randomized\n\n");
  std::vector<double> ds, fd_words, sampling_words, svs_words;
  for (size_t d : {8u, 16u, 24u, 32u, 48u, 64u}) {
    const double eps = 1.0 / static_cast<double>(d);
    const size_t s = d;
    // d rows per server (n = d^2): the regime of the intro's claim, where
    // a local FD sketch at eps = 1/d genuinely needs ~d rows.
    const Matrix a = GenerateZipfSpectrum(
        {.rows = d * d, .cols = d, .alpha = 0.6,
         .top_singular_value = 50.0, .seed = d});
    Cluster cluster = bench::MakeCluster(a, s, eps);
    const double budget = eps * SquaredFrobeniusNorm(a);

    FdMergeProtocol fd({.eps = eps, .k = 0});
    auto fd_result = fd.Run(cluster);
    DS_CHECK(fd_result.ok());

    RowSamplingProtocol sampling({.eps = eps, .oversample = 1.0, .seed = 3});
    auto sampling_result = sampling.Run(cluster);
    DS_CHECK(sampling_result.ok());

    SvsProtocol svs({.alpha = eps / 4.0, .delta = 0.1, .seed = 5});
    auto svs_result = svs.Run(cluster);
    DS_CHECK(svs_result.ok());

    std::printf(
        "  d=s=%-3zu eps=1/d : fd=%-9llu sampling=%-9llu svs=%-9llu   "
        "(svs err/budget=%.3f)\n",
        d, static_cast<unsigned long long>(fd_result->comm.total_words),
        static_cast<unsigned long long>(sampling_result->comm.total_words),
        static_cast<unsigned long long>(svs_result->comm.total_words),
        CovarianceError(a, svs_result->sketch) / budget);

    ds.push_back(static_cast<double>(d));
    fd_words.push_back(static_cast<double>(fd_result->comm.total_words));
    sampling_words.push_back(
        static_cast<double>(sampling_result->comm.total_words));
    svs_words.push_back(static_cast<double>(svs_result->comm.total_words));
  }
  std::printf(
      "\n  log-log slope in d:  fd=%.2f (theory 3.0)   sampling=%.2f "
      "(theory 3.0)   svs=%.2f (theory 2.5 + log factor)\n",
      bench::LogLogSlope(ds, fd_words),
      bench::LogLogSlope(ds, sampling_words),
      bench::LogLogSlope(ds, svs_words));
  return 0;
}
