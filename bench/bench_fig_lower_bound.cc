// Experiment F2 — empirical view of the deterministic lower bound
// construction (§2.1, Lemma 2 / Theorem 3).
//
// Hard instances: every server holds a t-by-d +-1 matrix, so
// ||A||_F^2 = s*t*d exactly and the allowed coverr for an (eps,0)-sketch
// with eps = sigma/t is sigma*s*d. Lemma 2 says any big input rectangle
// contains two inputs whose covariances differ by Omega(s*d) - s*t, so a
// single answer cannot serve both once sigma is a small constant.
//
// We sample random input pairs and measure ||A^T A - A'^T A'||_2 / (s*d):
// the ratio concentrates around a constant (growing with t like sqrt(t)
// for random pairs; Lemma 2's adversarial pairs achieve Omega(1) even at
// t = sigma*d), while the allowed error is only sigma. Any sigma below
// the observed separation certifies that distinguishing inputs is
// necessary, i.e. communication must grow with s*t*d = s*d/eps bits.

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/spectral.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

// ||A^T A - A'^T A'||_2 for fresh random +-1 inputs of shape (s*t)-by-d.
double PairSeparation(size_t s, size_t t, size_t d, uint64_t seed) {
  const Matrix a = GenerateSignMatrix(s * t, d, Rng::DeriveSeed(seed, 1));
  const Matrix a2 = GenerateSignMatrix(s * t, d, Rng::DeriveSeed(seed, 2));
  const Matrix diff = Subtract(Gram(a), Gram(a2));
  return SymmetricSpectralNorm(diff);
}

}  // namespace
}  // namespace distsketch

int main() {
  using namespace distsketch;
  std::printf(
      "F2: lower-bound construction (Thm 3) — covariance separation of "
      "random +-1 hard instances\n\n");
  std::printf(
      "  %-6s %-6s %-6s   %-22s %-18s\n", "s", "t", "d",
      "mean ||G-G'||/(s*d)", "allowed sigma (eps*t)");
  for (size_t d : {32u, 64u}) {
    for (size_t s : {4u, 8u, 16u}) {
      for (size_t t : {4u, 8u, 16u}) {
        const int trials = 5;
        double mean = 0.0, worst = 0.0;
        for (int trial = 0; trial < trials; ++trial) {
          const double sep =
              PairSeparation(s, t, d, 1000 * trial + 17 * d + s);
          mean += sep;
          worst = std::max(worst, sep);
        }
        mean /= trials;
        const double norm = static_cast<double>(s) * static_cast<double>(d);
        // For the output X of a correct protocol to serve both inputs we
        // would need separation <= 2*sigma*s*d, i.e. sigma >= sep/(2sd).
        std::printf(
            "  %-6zu %-6zu %-6zu   mean=%-8.3f max=%-8.3f sigma must "
            "exceed %.3f\n",
            s, t, d, mean / norm, worst / norm, worst / (2.0 * norm));
      }
    }
  }
  std::printf(
      "\n  Reading: with eps = sigma/t below the printed threshold, no "
      "single output serves two random inputs, so a deterministic "
      "protocol must distinguish essentially all 2^{std} inputs — "
      "Omega(s*t*d) = Omega(s*d/eps) bits (Theorem 3). The randomized SVS "
      "protocol (bench_table1) beats this with sqrt(s) scaling, proving "
      "the separation.\n");
  return 0;
}
