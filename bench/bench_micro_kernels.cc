// Experiment M1 — google-benchmark microbenchmarks of the computational
// kernels every protocol sits on: FD append/shrink throughput, SVD,
// symmetric eigensolve, spectral norm (power iteration), SVS, and Gram.
//
// Besides the google-benchmark tables, the binary appends svd-kernel rows
// (Jacobi vs Gram route vs threaded Jacobi) to BENCH_sketch.json so the
// dispatch policy's claims live next to the protocol measurements.
// `--smoke` runs only those rows at tiny sizes for the perf-smoke CTest.

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "linalg/qr.h"
#include "linalg/simd_dispatch.h"
#include "linalg/spectral.h"
#include "linalg/spectral_kernel.h"
#include "linalg/svd.h"
#include "sketch/frequent_directions.h"
#include "sketch/quantizer.h"
#include "sketch/row_sampling.h"
#include "sketch/svs.h"
#include "wire/codec.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

void BM_Gram(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateGaussian(512, d, 1.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gram(a));
  }
  state.SetItemsProcessed(state.iterations() * 512 * d);
}
BENCHMARK(BM_Gram)->Arg(16)->Arg(64)->Arg(128);

void BM_HouseholderQr(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateGaussian(4 * d, d, 1.0, 2);
  for (auto _ : state) {
    auto qr = HouseholderQr(a);
    benchmark::DoNotOptimize(qr);
  }
}
BENCHMARK(BM_HouseholderQr)->Arg(16)->Arg(32)->Arg(64);

void BM_JacobiSvd(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateGaussian(2 * d, d, 1.0, 3);
  for (auto _ : state) {
    auto svd = ComputeSvd(a);
    benchmark::DoNotOptimize(svd);
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SymmetricEigen(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateGaussian(2 * d, d, 1.0, 4);
  const Matrix g = Gram(a);
  for (auto _ : state) {
    auto eig = ComputeSymmetricEigen(g);
    benchmark::DoNotOptimize(eig);
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SpectralNormPowerIteration(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateGaussian(2 * d, d, 1.0, 5);
  const Matrix g = Gram(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymmetricSpectralNorm(g));
  }
}
BENCHMARK(BM_SpectralNormPowerIteration)->Arg(16)->Arg(64)->Arg(128);

void BM_FdStreamThroughput(benchmark::State& state) {
  const size_t d = 64;
  const size_t sketch_size = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateGaussian(2048, d, 1.0, 6);
  for (auto _ : state) {
    FrequentDirections fd(d, sketch_size);
    fd.AppendRows(a);
    benchmark::DoNotOptimize(fd.Sketch());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_FdStreamThroughput)->Arg(8)->Arg(16)->Arg(32);

void BM_SvsQuadratic(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateZipfSpectrum(
      {.rows = 4 * d, .cols = d, .alpha = 0.8, .seed = 7});
  SamplingFunctionParams params;
  params.num_servers = 16;
  params.alpha = 0.1;
  params.total_frobenius = SquaredFrobeniusNorm(a);
  params.dim = d;
  params.delta = 0.1;
  const QuadraticSamplingFunction g(params);
  uint64_t seed = 0;
  for (auto _ : state) {
    auto r = Svs(a, g, ++seed);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SvsQuadratic)->Arg(16)->Arg(32)->Arg(64);

void BM_SpectralKernelGramRoute(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateGaussian(8 * d, d, 1.0, 9);
  SpectralKernelOptions options;
  options.route = SpectralRoute::kGram;
  SvdWorkspace ws;
  for (auto _ : state) {
    auto spec = ComputeSigmaVt(a, options, &ws);
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_SpectralKernelGramRoute)->Arg(16)->Arg(32)->Arg(64);

void BM_SpectralKernelJacobiRoute(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateGaussian(8 * d, d, 1.0, 9);
  SpectralKernelOptions options;
  options.route = SpectralRoute::kJacobi;
  for (auto _ : state) {
    auto spec = ComputeSigmaVt(a, options);
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_SpectralKernelJacobiRoute)->Arg(16)->Arg(32)->Arg(64);

void BM_RowStreamReservoir(benchmark::State& state) {
  const size_t d = 64;
  const Matrix a = GenerateGaussian(2048, d, 1.0, 8);
  for (auto _ : state) {
    RowSamplingSketch s(d, 64, 9);
    s.AppendRows(a);
    benchmark::DoNotOptimize(s.Sketch());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_RowStreamReservoir);

// Times one (route, thread-count) configuration of the spectral kernel:
// min over `reps` timed runs after one warmup, so a background stall
// cannot inflate a row.
double TimeKernelMs(const Matrix& a, SpectralRoute route, size_t threads,
                    int reps) {
  ThreadPool::SetGlobalThreads(threads);
  SpectralKernelOptions options;
  options.route = route;
  SvdWorkspace ws;
  auto warmup = ComputeSigmaVt(a, options, &ws);
  DS_CHECK(warmup.ok());
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    bench::WallTimer timer;
    auto spec = ComputeSigmaVt(a, options, &ws);
    const double ms = timer.ElapsedMs();
    DS_CHECK(spec.ok());
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

// Appends the svd-kernel comparison rows to BENCH_sketch.json: serial
// Jacobi (the pre-dispatch baseline), the Gram route, and both again on
// the full global pool. Smoke mode shrinks the instance so the CTest
// perf-smoke exercises the machinery without measuring a real speedup.
void EmitSvdKernelRows(bool smoke) {
  const size_t n = smoke ? 512 : 4096;
  const size_t d = smoke ? 32 : 64;
  const int reps = smoke ? 1 : 5;
  const size_t saved_threads = ThreadPool::GlobalThreads();
  const size_t pool = saved_threads > 1 ? saved_threads : 8;
  const Matrix a = GenerateGaussian(n, d, 1.0, 101);

  struct Row {
    const char* op;
    SpectralRoute route;
    size_t threads;
  };
  const Row rows[] = {
      {"svd_jacobi", SpectralRoute::kJacobi, 1},
      {"svd_jacobi_threaded", SpectralRoute::kJacobi, pool},
      {"svd_gram_route", SpectralRoute::kGram, 1},
      {"svd_gram_threaded", SpectralRoute::kGram, pool},
  };
  bench::BenchJsonWriter writer;
  std::printf("svd-kernel rows (n=%zu d=%zu)%s\n", n, d,
              smoke ? " (smoke sizes)" : "");
  for (const Row& row : rows) {
    bench::BenchRecord rec;
    rec.op = row.op;
    rec.n = n;
    rec.d = d;
    rec.threads = row.threads;
    rec.wall_ms = TimeKernelMs(a, row.route, row.threads, reps);
    writer.Add(rec);
    std::printf("  %-20s threads=%zu  %8.3f ms\n", row.op, row.threads,
                rec.wall_ms);
  }
  ThreadPool::SetGlobalThreads(saved_threads);
}

// ---------------------------------------------------------------------------
// SIMD backend rows (E10): the four dispatched hot kernels timed under
// every backend this host supports, written with the `backend` field so
// the scalar/AVX2/AVX-512 rows coexist in BENCH_sketch.json.

// Restores the process-wide backend even if a timing lambda throws.
class BackendGuard {
 public:
  BackendGuard() : prev_(ActiveSimdBackend()) {}
  ~BackendGuard() { SetSimdBackendForTesting(prev_); }

 private:
  SimdBackend prev_;
};

std::vector<SimdBackend> SupportedBackends() {
  std::vector<SimdBackend> out = {SimdBackend::kScalar};
  for (const SimdBackend b : {SimdBackend::kAvx2, SimdBackend::kAvx512}) {
    if (SimdBackendSupported(b)) out.push_back(b);
  }
  return out;
}

template <typename Fn>
double MinWallMs(int reps, const Fn& fn) {
  fn();  // warmup
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    bench::WallTimer timer;
    fn();
    const double ms = timer.ElapsedMs();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

/// Times Gram / Multiply / Jacobi SVD / wire bit-packing under one
/// backend. Keys of the returned map are the row `op` names.
std::map<std::string, double> TimeSimdKernelsMs(bool smoke) {
  const size_t n = smoke ? 256 : 4096;
  const size_t d = smoke ? 16 : 64;
  const int reps = smoke ? 1 : 5;
  const Matrix a = GenerateGaussian(n, d, 1.0, 202);
  const Matrix b = GenerateGaussian(d, d, 1.0, 203);
  const Matrix jac = GenerateGaussian(2 * d, d, 1.0, 204);
  auto quant = QuantizeMatrix(a, /*precision=*/0.0078125);
  DS_CHECK(quant.ok());

  std::map<std::string, double> ms;
  ms["simd_gram"] = MinWallMs(reps, [&] {
    benchmark::DoNotOptimize(Gram(a));
  });
  ms["simd_multiply"] = MinWallMs(reps, [&] {
    benchmark::DoNotOptimize(Multiply(a, b));
  });
  ms["simd_jacobi_svd"] = MinWallMs(reps, [&] {
    auto svd = ComputeSvd(jac);
    DS_CHECK(svd.ok());
    benchmark::DoNotOptimize(svd);
  });
  ms["simd_bitpack"] = MinWallMs(reps, [&] {
    auto payload = wire::EncodeQuantizedPayload(*quant);
    DS_CHECK(payload.ok());
    auto decoded = wire::DecodeMatrixPayload(payload->data(), payload->size());
    DS_CHECK(decoded.ok());
    benchmark::DoNotOptimize(decoded);
  });
  return ms;
}

/// Per-backend rows for the dispatched kernels; returns
/// op -> backend -> wall ms for the regression gate.
std::map<std::string, std::map<std::string, double>> EmitSimdBackendRows(
    bool smoke) {
  BackendGuard guard;
  const size_t n = smoke ? 256 : 4096;
  const size_t d = smoke ? 16 : 64;
  bench::BenchJsonWriter writer;
  std::map<std::string, std::map<std::string, double>> all;
  std::printf("\nsimd backend rows (n=%zu d=%zu)%s\n", n, d,
              smoke ? " (smoke sizes)" : "");
  for (const SimdBackend backend : SupportedBackends()) {
    SetSimdBackendForTesting(backend);
    const std::string name(SimdBackendName(backend));
    for (const auto& [op, wall_ms] : TimeSimdKernelsMs(smoke)) {
      bench::BenchRecord rec;
      rec.op = op;
      rec.n = n;
      rec.d = d;
      rec.wall_ms = wall_ms;
      rec.backend = name;
      writer.Add(rec);
      all[op][name] = wall_ms;
      std::printf("  %-16s backend=%-7s %9.3f ms\n", op.c_str(),
                  name.c_str(), wall_ms);
    }
  }
  return all;
}

double JsonNumber(const std::string& text, const std::string& key,
                  double fallback) {
  const std::string tag = "\"" + key + "\":";
  size_t pos = text.find(tag);
  if (pos == std::string::npos) return fallback;
  pos += tag.size();
  return std::strtod(text.c_str() + pos, nullptr);
}

/// Gate for CI: the best SIMD backend must beat scalar by at least the
/// per-kernel floor in the committed baseline JSON. Exits 0 with a
/// notice when the host has no SIMD backend (nothing to compare).
int CheckAgainstBaseline(
    const char* path,
    const std::map<std::string, std::map<std::string, double>>& all) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path);
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  if (SupportedBackends().size() == 1) {
    std::printf("kernel gate: host supports only the scalar backend; "
                "nothing to compare — skipping\n");
    return 0;
  }
  int rc = 0;
  for (const auto& [op, by_backend] : all) {
    const double floor = JsonNumber(text, op + "_min_speedup", -1.0);
    if (floor <= 0.0) continue;  // kernel not gated by this baseline
    const auto scalar = by_backend.find("scalar");
    if (scalar == by_backend.end()) continue;
    double best = scalar->second;
    std::string best_name = "scalar";
    for (const auto& [name, ms] : by_backend) {
      if (ms < best) {
        best = ms;
        best_name = name;
      }
    }
    const double speedup = scalar->second / best;
    std::printf("kernel gate: %-16s best=%-7s speedup %.2fx (floor %.2fx)\n",
                op.c_str(), best_name.c_str(), speedup, floor);
    if (speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: %s best backend %.2fx below baseline floor %.2fx\n",
                   op.c_str(), speedup, floor);
      rc = 1;
    }
  }
  return rc;
}

}  // namespace
}  // namespace distsketch

int main(int argc, char** argv) {
  bool smoke = false;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }
  if (baseline_path != nullptr) {
    // CI kernel-regression gate: full-size backend rows, compared
    // against the committed speedup floors.
    const auto all = distsketch::EmitSimdBackendRows(/*smoke=*/false);
    return distsketch::CheckAgainstBaseline(baseline_path, all);
  }
  if (smoke) {
    // CTest perf-smoke entry: only the JSON-emitting kernel rows, tiny.
    distsketch::EmitSvdKernelRows(/*smoke=*/true);
    distsketch::EmitSimdBackendRows(/*smoke=*/true);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  distsketch::EmitSvdKernelRows(/*smoke=*/false);
  distsketch::EmitSimdBackendRows(/*smoke=*/false);
  return 0;
}
