// Experiment M1 — google-benchmark microbenchmarks of the computational
// kernels every protocol sits on: FD append/shrink throughput, SVD,
// symmetric eigensolve, spectral norm (power iteration), SVS, and Gram.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "linalg/qr.h"
#include "linalg/spectral.h"
#include "linalg/svd.h"
#include "sketch/frequent_directions.h"
#include "sketch/row_sampling.h"
#include "sketch/svs.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

void BM_Gram(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateGaussian(512, d, 1.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gram(a));
  }
  state.SetItemsProcessed(state.iterations() * 512 * d);
}
BENCHMARK(BM_Gram)->Arg(16)->Arg(64)->Arg(128);

void BM_HouseholderQr(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateGaussian(4 * d, d, 1.0, 2);
  for (auto _ : state) {
    auto qr = HouseholderQr(a);
    benchmark::DoNotOptimize(qr);
  }
}
BENCHMARK(BM_HouseholderQr)->Arg(16)->Arg(32)->Arg(64);

void BM_JacobiSvd(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateGaussian(2 * d, d, 1.0, 3);
  for (auto _ : state) {
    auto svd = ComputeSvd(a);
    benchmark::DoNotOptimize(svd);
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SymmetricEigen(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateGaussian(2 * d, d, 1.0, 4);
  const Matrix g = Gram(a);
  for (auto _ : state) {
    auto eig = ComputeSymmetricEigen(g);
    benchmark::DoNotOptimize(eig);
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SpectralNormPowerIteration(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateGaussian(2 * d, d, 1.0, 5);
  const Matrix g = Gram(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymmetricSpectralNorm(g));
  }
}
BENCHMARK(BM_SpectralNormPowerIteration)->Arg(16)->Arg(64)->Arg(128);

void BM_FdStreamThroughput(benchmark::State& state) {
  const size_t d = 64;
  const size_t sketch_size = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateGaussian(2048, d, 1.0, 6);
  for (auto _ : state) {
    FrequentDirections fd(d, sketch_size);
    fd.AppendRows(a);
    benchmark::DoNotOptimize(fd.Sketch());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_FdStreamThroughput)->Arg(8)->Arg(16)->Arg(32);

void BM_SvsQuadratic(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix a = GenerateZipfSpectrum(
      {.rows = 4 * d, .cols = d, .alpha = 0.8, .seed = 7});
  SamplingFunctionParams params;
  params.num_servers = 16;
  params.alpha = 0.1;
  params.total_frobenius = SquaredFrobeniusNorm(a);
  params.dim = d;
  params.delta = 0.1;
  const QuadraticSamplingFunction g(params);
  uint64_t seed = 0;
  for (auto _ : state) {
    auto r = Svs(a, g, ++seed);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SvsQuadratic)->Arg(16)->Arg(32)->Arg(64);

void BM_RowStreamReservoir(benchmark::State& state) {
  const size_t d = 64;
  const Matrix a = GenerateGaussian(2048, d, 1.0, 8);
  for (auto _ : state) {
    RowSamplingSketch s(d, 64, 9);
    s.AppendRows(a);
    benchmark::DoNotOptimize(s.Sketch());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_RowStreamReservoir);

}  // namespace
}  // namespace distsketch

BENCHMARK_MAIN();
