// Experiment E3 (extension) — sliding-window sketching (Wei et al. [34],
// §1.5 related work): error and space of the block-based
// Logarithmic-Method window sketch across eps, vs the trivial approach
// of buffering the whole window.

#include <cstdio>

#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "sketch/sliding_window.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

void RunCase(double eps) {
  const size_t d = 24;
  const size_t window = 512;
  const Matrix stream = GenerateZipfSpectrum(
      {.rows = 4096, .cols = d, .alpha = 0.8, .seed = 7});
  auto sw = SlidingWindowSketch::Create(d, window, eps);
  DS_CHECK(sw.ok());
  double worst = 0.0;
  size_t max_blocks = 0;
  size_t sketch_rows = 0;
  size_t checks = 0;
  for (size_t i = 0; i < stream.rows(); ++i) {
    DS_CHECK(sw->Append(stream.Row(i)).ok());
    max_blocks = std::max(max_blocks, sw->num_blocks());
    if ((i + 1) % 512 == 0 && i + 1 >= window) {
      auto q = sw->Query();
      DS_CHECK(q.ok());
      const Matrix recent = stream.RowRange(i + 1 - window, i + 1);
      worst = std::max(worst, CovarianceError(recent, *q) /
                                  (static_cast<double>(window) *
                                   sw->max_row_norm() *
                                   sw->max_row_norm()));
      sketch_rows = std::max(sketch_rows, q->rows());
      ++checks;
    }
  }
  // Space: blocks * FD rows * d doubles, vs window * d for buffering.
  const size_t fd_rows = static_cast<size_t>(2.0 / eps) + 1;
  const size_t space = max_blocks * fd_rows * d;
  std::printf(
      "  eps=%-5.2f worst err/(W R^2)=%-8.4f blocks<=%-3zu space~%-8zu "
      "doubles (buffer: %zu) query rows<=%zu  checks=%zu\n",
      eps, worst, max_blocks, space, window * d, sketch_rows, checks);
}

}  // namespace
}  // namespace distsketch

int main() {
  std::printf(
      "E3 (extension): sliding-window covariance sketch [34] — worst "
      "window error vs eps*W*R^2 budget, and space vs buffering\n\n");
  for (double eps : {0.4, 0.2, 0.1, 0.05}) {
    distsketch::RunCase(eps);
  }
  std::printf(
      "\n  Reading: worst-case window error stays below the eps budget "
      "(values ~eps/2 here) while space stays sublinear in the window "
      "until eps gets small enough that 1/eps^2 overtakes W.\n");
  return 0;
}
