#ifndef DISTSKETCH_BENCH_BENCH_UTIL_H_
#define DISTSKETCH_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dist/cluster.h"
#include "linalg/simd_dispatch.h"
#include "workload/partition.h"

namespace distsketch {
namespace bench {

/// Wall-clock stopwatch for bench loops.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  /// Milliseconds since construction (or the last Reset).
  double ElapsedMs() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One machine-readable measurement for BENCH_sketch.json.
struct BenchRecord {
  std::string op;      // e.g. "fd_merge", "gram_update", "parallel_sketch"
  size_t n = 0;        // total rows
  size_t d = 0;        // dimension
  size_t s = 0;        // servers
  size_t l = 0;        // sketch size / rows (0 when not applicable)
  size_t threads = 1;  // global pool size for the run
  double wall_ms = 0;  // wall-clock time of the measured region
  uint64_t words = 0;  // metered communication words (0 for local kernels)
  // Measured encoded frame bytes that crossed the simulated wire (the
  // byte-level counterpart of the analytic `words`; 0 for local kernels).
  uint64_t wire_bytes = 0;
  // SIMD backend the measured region ran under. Defaults to the
  // process-wide active backend so existing benches pick it up without
  // code changes; kernel benches that swap backends set it explicitly.
  std::string backend = std::string(SimdBackendName(ActiveSimdBackend()));
  // Aggregation topology of the measured run ("star", "tree8", ...).
  // Part of the row key: the same (op, shape) measured under different
  // topologies are different experiments.
  std::string topology = "star";
  // Encoded frame bytes received by the coordinator — the quantity
  // aggregation trees shrink while total wire_bytes stays put (0 for
  // local kernels).
  uint64_t coord_wire_bytes = 0;
};

/// Accumulates BenchRecords and merges them into a JSON array on Flush
/// (and at destruction). Merging means: if the target file already holds
/// an array written by this class — possibly by another bench binary —
/// the new records are folded into it, so every experiment lands in one
/// BENCH_sketch.json. Rows are keyed by their configuration
/// (op, n, d, s, l, threads): re-running a bench updates its existing
/// rows in place instead of appending duplicates.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string path = "BENCH_sketch.json")
      : path_(std::move(path)) {}
  ~BenchJsonWriter() { Flush(); }

  void Add(const BenchRecord& r) { records_.push_back(r); }

  void Flush() {
    if (records_.empty()) return;
    // Load the rows of any existing array, so records from earlier
    // runs/binaries survive (deduped against the new ones below).
    std::vector<std::string> rows;
    std::vector<std::string> keys;
    {
      std::ifstream in(path_);
      if (in) {
        std::stringstream ss;
        ss << in.rdbuf();
        const std::string text = ss.str();
        const size_t open = text.find('[');
        const size_t close = text.rfind(']');
        if (open != std::string::npos && close != std::string::npos &&
            close > open) {
          size_t pos = open + 1;
          while (true) {
            const size_t begin = text.find('{', pos);
            if (begin == std::string::npos || begin > close) break;
            const size_t end = text.find('}', begin);
            if (end == std::string::npos || end > close) break;
            std::string row = text.substr(begin, end - begin + 1);
            std::string key = KeyOfRow(row);
            // Collapse duplicates already in the file (written before
            // this class deduped): the last row for a config wins.
            const auto it = std::find(keys.begin(), keys.end(), key);
            if (it != keys.end()) {
              rows[static_cast<size_t>(it - keys.begin())] = std::move(row);
            } else {
              rows.push_back(std::move(row));
              keys.push_back(std::move(key));
            }
            pos = end + 1;
          }
        }
      }
    }
    for (const BenchRecord& r : records_) {
      std::string row = RowText(r);
      std::string key = KeyOfRow(row);
      const auto it = std::find(keys.begin(), keys.end(), key);
      if (it != keys.end()) {
        rows[static_cast<size_t>(it - keys.begin())] = std::move(row);
      } else {
        rows.push_back(std::move(row));
        keys.push_back(std::move(key));
      }
    }
    std::ofstream out(path_, std::ios::trunc);
    if (!out) return;
    out << "[";
    for (size_t i = 0; i < rows.size(); ++i) {
      out << (i == 0 ? "" : ",") << "\n  " << rows[i];
    }
    out << "\n]\n";
    records_.clear();
  }

 private:
  static std::string RowText(const BenchRecord& r) {
    std::ostringstream row;
    row << "{\"op\": \"" << r.op << "\", \"n\": " << r.n
        << ", \"d\": " << r.d << ", \"s\": " << r.s << ", \"l\": " << r.l
        << ", \"threads\": " << r.threads
        << ", \"backend\": \"" << r.backend << "\""
        << ", \"topology\": \"" << r.topology << "\""
        << ", \"wall_ms\": " << r.wall_ms << ", \"words\": " << r.words
        << ", \"wire_bytes\": " << r.wire_bytes
        << ", \"coord_wire_bytes\": " << r.coord_wire_bytes << "}";
    return row.str();
  }

  // Extracts the value of `name` from a serialized row; quoted strings
  // come back without the quotes.
  static std::string FieldOfRow(const std::string& row,
                                const std::string& name) {
    const std::string tag = "\"" + name + "\": ";
    size_t pos = row.find(tag);
    if (pos == std::string::npos) return "";
    pos += tag.size();
    size_t end;
    if (pos < row.size() && row[pos] == '"') {
      ++pos;
      end = row.find('"', pos);
    } else {
      end = row.find_first_of(",}", pos);
    }
    if (end == std::string::npos) return "";
    return row.substr(pos, end - pos);
  }

  // The configuration key of a row: everything except the measurements.
  // Rows written before the `backend` field existed were all measured on
  // the scalar kernels, so a missing field keys as "scalar" — re-running
  // on a scalar host updates those legacy rows instead of duplicating.
  static std::string KeyOfRow(const std::string& row) {
    std::string key;
    for (const char* name : {"op", "n", "d", "s", "l", "threads"}) {
      key += FieldOfRow(row, name);
      key += '|';
    }
    std::string backend = FieldOfRow(row, "backend");
    key += backend.empty() ? "scalar" : backend;
    key += '|';
    // Rows written before the `topology` field existed were all star
    // runs (the only aggregation shape then), so a missing field keys
    // as "star" — same migration the `backend` field got.
    std::string topology = FieldOfRow(row, "topology");
    key += topology.empty() ? "star" : topology;
    key += '|';
    return key;
  }

  std::string path_;
  std::vector<BenchRecord> records_;
};

/// Builds a cluster over a round-robin partition of `a`.
inline Cluster MakeCluster(const Matrix& a, size_t s, double eps) {
  auto cluster =
      Cluster::Create(PartitionRows(a, s, PartitionScheme::kRoundRobin), eps);
  DS_CHECK(cluster.ok());
  return std::move(*cluster);
}

/// Prints a section header.
inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Least-squares slope of log(y) against log(x): the empirical scaling
/// exponent ("words grow like x^slope").
inline double LogLogSlope(const std::vector<double>& x,
                          const std::vector<double>& y) {
  DS_CHECK(x.size() == y.size() && x.size() >= 2);
  const size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  return (n * sxy - sx * sy) / denom;
}

}  // namespace bench
}  // namespace distsketch

#endif  // DISTSKETCH_BENCH_BENCH_UTIL_H_
