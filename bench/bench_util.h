#ifndef DISTSKETCH_BENCH_BENCH_UTIL_H_
#define DISTSKETCH_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "dist/cluster.h"
#include "workload/partition.h"

namespace distsketch {
namespace bench {

/// Builds a cluster over a round-robin partition of `a`.
inline Cluster MakeCluster(const Matrix& a, size_t s, double eps) {
  auto cluster =
      Cluster::Create(PartitionRows(a, s, PartitionScheme::kRoundRobin), eps);
  DS_CHECK(cluster.ok());
  return std::move(*cluster);
}

/// Prints a section header.
inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Least-squares slope of log(y) against log(x): the empirical scaling
/// exponent ("words grow like x^slope").
inline double LogLogSlope(const std::vector<double>& x,
                          const std::vector<double>& y) {
  DS_CHECK(x.size() == y.size() && x.size() >= 2);
  const size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  return (n * sxy - sx * sy) / denom;
}

}  // namespace bench
}  // namespace distsketch

#endif  // DISTSKETCH_BENCH_BENCH_UTIL_H_
