// Experiment T1 — reproduces Table 1 of the paper: communication costs of
// distributed covariance sketching, for both error regimes.
//
//   | algorithm        | eps*||A||_F^2 cost      | eps*||A-[A]_k||_F^2/k |
//   | FD-merge [27,16] | O(s d / eps)            | O(s k d / eps)        |
//   | Sampling [10]    | O(s + d / eps^2)        |   -                   |
//   | New (SVS / §3.2) | O(sqrt(s) d sqrt(lg d)/eps) | O(sdk + sqrt(s) ...) |
//   | Det. LB (Thm 3)  | Omega(s d / eps)        | Omega(s k d / eps)    |
//
// We meter real words on a simulated cluster and verify every algorithm
// meets its covariance-error budget; the paper's claim is the *shape*
// (s vs sqrt(s), 1/eps vs 1/eps^2) and who wins where.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "dist/adaptive_sketch_protocol.h"
#include "dist/exact_gram_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "dist/row_sampling_protocol.h"
#include "dist/svs_protocol.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

using bench::BenchJsonWriter;
using bench::BenchRecord;
using bench::LogLogSlope;
using bench::MakeCluster;
using bench::Section;
using bench::WallTimer;

struct Row {
  const char* algo;
  uint64_t words;
  double err_over_budget;
};

BenchJsonWriter& Json() {
  static BenchJsonWriter writer;
  return writer;
}

/// Runs the protocol, meters wall time, and appends a machine-readable
/// record to BENCH_sketch.json alongside the human-readable table.
template <typename Protocol>
StatusOr<SketchProtocolResult> RunLogged(const char* op, Protocol& protocol,
                                         Cluster& cluster, size_t n, size_t d,
                                         size_t s) {
  WallTimer timer;
  auto result = protocol.Run(cluster);
  const double ms = timer.ElapsedMs();
  if (result.ok()) {
    Json().Add(BenchRecord{.op = op,
                           .n = n,
                           .d = d,
                           .s = s,
                           .l = result->sketch_rows,
                           .threads = ThreadPool::GlobalThreads(),
                           .wall_ms = ms,
                           .words = result->comm.total_words,
                           .wire_bytes = result->comm.total_wire_bytes});
  }
  return result;
}

void PrintRow(const char* algo, size_t s, double eps, uint64_t words,
              double err, double budget) {
  std::printf("  %-16s s=%-4zu eps=%-5.3g words=%-10llu err/budget=%.3f\n",
              algo, s, eps, static_cast<unsigned long long>(words),
              err / budget);
}

void SweepServersEpsZero() {
  Section("Table 1, error eps*||A||_F^2: words vs s  (d=64, eps=0.1)");
  const double eps = 0.1;
  const Matrix a = GenerateZipfSpectrum({.rows = 4096,
                                         .cols = 64,
                                         .alpha = 0.8,
                                         .top_singular_value = 100.0,
                                         .seed = 1});
  const double budget = eps * SquaredFrobeniusNorm(a);
  std::vector<double> ss, fd_words, svs_words;
  for (size_t s : {4u, 8u, 16u, 32u, 64u}) {
    Cluster cluster = MakeCluster(a, s, eps);

    FdMergeProtocol fd({.eps = eps, .k = 0});
    auto fd_result = RunLogged("fd_merge", fd, cluster, 4096, 64, s);
    DS_CHECK(fd_result.ok());
    PrintRow("fd_merge", s, eps, fd_result->comm.total_words,
             CovarianceError(a, fd_result->sketch), budget);

    RowSamplingProtocol sampling({.eps = eps, .oversample = 2.0, .seed = 3});
    auto sampling_result =
        RunLogged("row_sampling", sampling, cluster, 4096, 64, s);
    DS_CHECK(sampling_result.ok());
    PrintRow("row_sampling", s, eps, sampling_result->comm.total_words,
             CovarianceError(a, sampling_result->sketch), budget);

    SvsProtocol svs({.alpha = eps / 4.0, .delta = 0.1, .seed = 5});
    auto svs_result = RunLogged("svs", svs, cluster, 4096, 64, s);
    DS_CHECK(svs_result.ok());
    PrintRow("svs (new)", s, eps, svs_result->comm.total_words,
             CovarianceError(a, svs_result->sketch), budget);

    ExactGramProtocol exact;
    auto exact_result = RunLogged("exact_gram", exact, cluster, 4096, 64, s);
    DS_CHECK(exact_result.ok());
    PrintRow("exact_gram", s, eps, exact_result->comm.total_words,
             CovarianceError(a, exact_result->sketch), budget);

    const uint64_t lb = static_cast<uint64_t>(s * 64 / eps);
    std::printf("  %-16s s=%-4zu eps=%-5.3g words=%-10llu (Thm 3 bound)\n",
                "det LB ~s*d/eps", s, eps,
                static_cast<unsigned long long>(lb));

    ss.push_back(static_cast<double>(s));
    fd_words.push_back(static_cast<double>(fd_result->comm.total_words));
    svs_words.push_back(static_cast<double>(svs_result->comm.total_words));
  }
  std::printf(
      "  scaling in s: fd_merge slope=%.2f (theory 1.0), svs slope=%.2f "
      "(theory 0.5)\n",
      LogLogSlope(ss, fd_words), LogLogSlope(ss, svs_words));
}

void SweepEps() {
  Section("Table 1, error eps*||A||_F^2: words vs eps  (d=64, s=16)");
  const size_t s = 16;
  const Matrix a = GenerateZipfSpectrum({.rows = 4096,
                                         .cols = 64,
                                         .alpha = 0.8,
                                         .top_singular_value = 100.0,
                                         .seed = 2});
  std::vector<double> inv_eps, fd_words, sampling_words, svs_words;
  for (double eps : {0.4, 0.2, 0.1, 0.05}) {
    Cluster cluster = MakeCluster(a, s, eps);
    const double budget = eps * SquaredFrobeniusNorm(a);

    FdMergeProtocol fd({.eps = eps, .k = 0});
    auto fd_result = RunLogged("fd_merge", fd, cluster, 4096, 64, s);
    DS_CHECK(fd_result.ok());
    PrintRow("fd_merge", s, eps, fd_result->comm.total_words,
             CovarianceError(a, fd_result->sketch), budget);

    RowSamplingProtocol sampling({.eps = eps, .oversample = 2.0, .seed = 7});
    auto sampling_result =
        RunLogged("row_sampling", sampling, cluster, 4096, 64, s);
    DS_CHECK(sampling_result.ok());
    PrintRow("row_sampling", s, eps, sampling_result->comm.total_words,
             CovarianceError(a, sampling_result->sketch), budget);

    SvsProtocol svs({.alpha = eps / 4.0, .delta = 0.1, .seed = 9});
    auto svs_result = RunLogged("svs", svs, cluster, 4096, 64, s);
    DS_CHECK(svs_result.ok());
    PrintRow("svs (new)", s, eps, svs_result->comm.total_words,
             CovarianceError(a, svs_result->sketch), budget);

    inv_eps.push_back(1.0 / eps);
    fd_words.push_back(static_cast<double>(fd_result->comm.total_words));
    sampling_words.push_back(
        static_cast<double>(sampling_result->comm.total_words));
    svs_words.push_back(static_cast<double>(svs_result->comm.total_words));
  }
  std::printf(
      "  scaling in 1/eps: fd=%.2f (theory 1.0), sampling=%.2f (theory "
      "2.0), svs=%.2f (theory 1.0)\n",
      LogLogSlope(inv_eps, fd_words), LogLogSlope(inv_eps, sampling_words),
      LogLogSlope(inv_eps, svs_words));
}

void SweepServersEpsK() {
  Section(
      "Table 1, error eps*||A-[A]_k||_F^2/k: words vs s  (d=64, eps=0.2, "
      "k=4)");
  const double eps = 0.2;
  const size_t k = 4;
  const Matrix a = GenerateLowRankPlusNoise({.rows = 4096,
                                             .cols = 64,
                                             .rank = 8,
                                             .decay = 0.7,
                                             .top_singular_value = 100.0,
                                             .noise_stddev = 0.5,
                                             .seed = 3});
  const double budget = SketchErrorBudget(a, 3.0 * eps, k);
  std::vector<double> ss, fd_words, adaptive_words;
  for (size_t s : {4u, 8u, 16u, 32u, 64u}) {
    Cluster cluster = MakeCluster(a, s, eps);

    FdMergeProtocol fd({.eps = eps, .k = k});
    auto fd_result = RunLogged("fd_merge", fd, cluster, 4096, 64, s);
    DS_CHECK(fd_result.ok());
    PrintRow("fd_merge", s, eps, fd_result->comm.total_words,
             CovarianceError(a, fd_result->sketch), budget);

    AdaptiveSketchProtocol adaptive(
        {.eps = eps, .k = k, .delta = 0.1, .seed = 11});
    auto ad_result =
        RunLogged("adaptive_sketch", adaptive, cluster, 4096, 64, s);
    DS_CHECK(ad_result.ok());
    PrintRow("adaptive (new)", s, eps, ad_result->comm.total_words,
             CovarianceError(a, ad_result->sketch), budget);

    const uint64_t lb = static_cast<uint64_t>(s * k * 64 / eps);
    std::printf("  %-16s s=%-4zu eps=%-5.3g words=%-10llu (Thm 3 bound)\n",
                "det LB ~skd/eps", s, eps,
                static_cast<unsigned long long>(lb));

    ss.push_back(static_cast<double>(s));
    fd_words.push_back(static_cast<double>(fd_result->comm.total_words));
    adaptive_words.push_back(
        static_cast<double>(ad_result->comm.total_words));
  }
  std::printf(
      "  scaling in s: fd_merge slope=%.2f (theory 1.0), adaptive "
      "slope=%.2f (theory in (0.5, 1.0): sdk + sqrt(s)kd/eps mix)\n",
      LogLogSlope(ss, fd_words), LogLogSlope(ss, adaptive_words));
}

void SweepWireEncoding() {
  Section(
      "Wire encoding: quantized vs dense payload bytes  (n=4096, d=64, "
      "s=16)");
  const size_t s = 16;
  const Matrix a = GenerateLowRankPlusNoise({.rows = 4096,
                                             .cols = 64,
                                             .rank = 8,
                                             .decay = 0.7,
                                             .top_singular_value = 100.0,
                                             .noise_stddev = 0.5,
                                             .seed = 4});
  const auto print = [](const char* algo, const SketchProtocolResult& dense,
                        const SketchProtocolResult& quant) {
    std::printf(
        "  %-16s dense: %llu bytes (%llu bits)  quantized: %llu bytes "
        "(%llu bits)  ratio=%.2fx\n",
        algo,
        static_cast<unsigned long long>(dense.comm.total_wire_bytes),
        static_cast<unsigned long long>(dense.comm.total_bits),
        static_cast<unsigned long long>(quant.comm.total_wire_bytes),
        static_cast<unsigned long long>(quant.comm.total_bits),
        static_cast<double>(dense.comm.total_wire_bytes) /
            static_cast<double>(quant.comm.total_wire_bytes));
  };
  {
    const double eps = 0.2;
    Cluster cluster = MakeCluster(a, s, eps);
    FdMergeProtocol dense({.eps = eps, .k = 4});
    FdMergeProtocol quant({.eps = eps, .k = 4, .quantize = true});
    auto dr = RunLogged("fd_merge_dense_wire", dense, cluster, 4096, 64, s);
    auto qr = RunLogged("fd_merge_quant_wire", quant, cluster, 4096, 64, s);
    DS_CHECK(dr.ok() && qr.ok());
    print("fd_merge", *dr, *qr);
  }
  {
    const double eps = 0.2;
    Cluster cluster = MakeCluster(a, s, eps);
    AdaptiveSketchProtocol dense({.eps = eps, .k = 4, .delta = 0.1,
                                  .seed = 11});
    AdaptiveSketchProtocol quant({.eps = eps, .k = 4, .delta = 0.1,
                                  .quantize = true, .seed = 11});
    auto dr = RunLogged("adaptive_dense_wire", dense, cluster, 4096, 64, s);
    auto qr = RunLogged("adaptive_quant_wire", quant, cluster, 4096, 64, s);
    DS_CHECK(dr.ok() && qr.ok());
    print("adaptive", *dr, *qr);
  }
}

}  // namespace
}  // namespace distsketch

int main() {
  std::printf(
      "T1: Table 1 reproduction — covariance-sketch communication costs\n");
  distsketch::SweepServersEpsZero();
  distsketch::SweepEps();
  distsketch::SweepServersEpsK();
  distsketch::SweepWireEncoding();
  distsketch::Json().Flush();
  std::printf("\nwrote BENCH_sketch.json\n");
  return 0;
}
