// Telemetry overhead: what does the tracing layer cost? Two questions,
// answered per protocol and per instrument:
//
//  1. Enabled overhead — wall time of a protocol run recording into a
//     live Telemetry context vs the same run against the Disabled()
//     null sink. The acceptance budget is < 3% on the table-1 shape.
//  2. Null-sink overhead — ns/op of the TELEM instrumentation calls
//     when telemetry is disabled (one pointer load + one branch). CI
//     gates this against bench/telemetry_overhead_baseline.json:
//     `--check <baseline.json>` exits nonzero when an instrument
//     regresses more than the baseline's tolerance (5%).
//
// `--smoke` shrinks sizes/reps so CTest can keep the binary and its
// BENCH_sketch.json rows exercised under the perf-smoke label.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "dist/adaptive_sketch_protocol.h"
#include "dist/exact_gram_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "dist/row_sampling_protocol.h"
#include "dist/svs_protocol.h"
#include "telemetry/span.h"
#include "telemetry/telemetry.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

double RunMillis(SketchProtocol& protocol, Cluster& cluster, int reps,
                 SketchProtocolResult* last) {
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    auto result = protocol.Run(cluster);
    DS_CHECK(result.ok());
    *last = std::move(*result);
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() /
         reps;
}

void BenchProtocol(const char* name, SketchProtocol& protocol,
                   Cluster& cluster, int reps, bench::BenchJsonWriter& json,
                   size_t n, size_t d, size_t s) {
  SketchProtocolResult result;

  // Warm caches/pool once so neither arm pays first-run costs.
  RunMillis(protocol, cluster, 1, &result);

  const double ms_off = RunMillis(protocol, cluster, reps, &result);
  const uint64_t words = result.comm.total_words;
  const uint64_t wire_bytes = result.comm.total_wire_bytes;

  telemetry::Telemetry telem;
  double ms_on;
  {
    telemetry::ScopedTelemetry scope(telem);
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      telem.Reset();  // bound span storage: measure recording, not growth
      auto res = protocol.Run(cluster);
      DS_CHECK(res.ok());
      result = std::move(*res);
    }
    const auto end = std::chrono::steady_clock::now();
    ms_on =
        std::chrono::duration<double, std::milli>(end - start).count() /
        reps;
  }
  const size_t spans = telem.Spans().size();
  const double overhead = ms_off > 0.0 ? (ms_on / ms_off - 1.0) : 0.0;

  std::printf(
      "%-16s off %8.3f ms | on %8.3f ms (%+5.1f%%) | %4zu spans, %7llu "
      "words\n",
      name, ms_off, ms_on, 100.0 * overhead, spans,
      static_cast<unsigned long long>(words));

  json.Add({.op = std::string("telemetry_off_") + name,
            .n = n,
            .d = d,
            .s = s,
            .l = 0,
            .threads = 1,
            .wall_ms = ms_off,
            .words = words,
            .wire_bytes = wire_bytes});
  json.Add({.op = std::string("telemetry_on_") + name,
            .n = n,
            .d = d,
            .s = s,
            .l = 0,
            .threads = 1,
            .wall_ms = ms_on,
            .words = words,
            .wire_bytes = wire_bytes});
}

/// ns/op of `telemetry::Count` against the null sink.
double NullCountNsPerOp(size_t iters) {
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iters; ++i) {
    telemetry::Count("bench.null_sink");
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(iters);
}

/// ns/op of constructing + destroying a Span against the null sink.
double NullSpanNsPerOp(size_t iters) {
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iters; ++i) {
    telemetry::Span span("bench/null_sink", telemetry::Phase::kCompute);
    span.SetAttr("i", static_cast<uint64_t>(i));
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(iters);
}

double JsonNumber(const std::string& text, const std::string& key,
                  double fallback) {
  const std::string tag = "\"" + key + "\":";
  size_t pos = text.find(tag);
  if (pos == std::string::npos) return fallback;
  pos += tag.size();
  return std::strtod(text.c_str() + pos, nullptr);
}

/// Compares measured null-sink costs against the committed baseline.
/// Returns the process exit code.
int CheckAgainstBaseline(const char* path, double count_ns,
                         double span_ns) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path);
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const double base_count = JsonNumber(text, "count_ns_per_op", -1.0);
  const double base_span = JsonNumber(text, "span_ns_per_op", -1.0);
  const double tolerance = JsonNumber(text, "tolerance", 0.05);
  if (base_count <= 0.0 || base_span <= 0.0) {
    std::fprintf(stderr, "baseline %s missing ns-per-op entries\n", path);
    return 2;
  }
  int rc = 0;
  const double count_limit = base_count * (1.0 + tolerance);
  const double span_limit = base_span * (1.0 + tolerance);
  std::printf("null-sink gate: count %.2f ns/op (limit %.2f), span %.2f "
              "ns/op (limit %.2f)\n",
              count_ns, count_limit, span_ns, span_limit);
  if (count_ns > count_limit) {
    std::fprintf(stderr,
                 "FAIL: null-sink Count %.2f ns/op exceeds baseline %.2f "
                 "+%.0f%%\n",
                 count_ns, base_count, 100.0 * tolerance);
    rc = 1;
  }
  if (span_ns > span_limit) {
    std::fprintf(stderr,
                 "FAIL: null-sink Span %.2f ns/op exceeds baseline %.2f "
                 "+%.0f%%\n",
                 span_ns, base_span, 100.0 * tolerance);
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace distsketch

int main(int argc, char** argv) {
  using namespace distsketch;
  bool smoke = false;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  std::printf("Telemetry overhead: Disabled() null sink vs live context\n\n");

  const size_t rows = smoke ? 120 : 400;
  const size_t cols = smoke ? 12 : 24;
  const size_t servers = 8;
  const int reps = smoke ? 3 : 20;
  const Matrix a =
      GenerateLowRankPlusNoise({.rows = rows,
                                .cols = cols,
                                .rank = 5,
                                .decay = 0.7,
                                .top_singular_value = 40.0,
                                .noise_stddev = 0.4,
                                .seed = 1});
  Cluster cluster = bench::MakeCluster(a, servers, 0.3);
  bench::BenchJsonWriter json;

  FdMergeProtocol fd({.eps = 0.3, .k = 3});
  BenchProtocol("fd_merge", fd, cluster, reps, json, rows, cols, servers);

  SvsProtocol svs({.alpha = 0.15, .delta = 0.05, .seed = 13});
  BenchProtocol("svs", svs, cluster, reps, json, rows, cols, servers);

  AdaptiveSketchProtocol adaptive({.eps = 0.3, .k = 3, .seed = 19});
  BenchProtocol("adaptive_sketch", adaptive, cluster, reps, json, rows,
                cols, servers);

  ExactGramProtocol gram;
  BenchProtocol("exact_gram", gram, cluster, reps, json, rows, cols,
                servers);

  RowSamplingProtocol sampling({.eps = 0.5, .seed = 13});
  BenchProtocol("row_sampling", sampling, cluster, reps, json, rows, cols,
                servers);

  // Null-sink microcosts. These run with the default Disabled() context.
  DS_CHECK(!telemetry::Telemetry::Current()->enabled());
  const size_t iters = smoke ? 200'000 : 5'000'000;
  const double count_ns = NullCountNsPerOp(iters);
  const double span_ns = NullSpanNsPerOp(iters / 2);
  std::printf("\nnull sink: Count %.2f ns/op, Span %.2f ns/op (%zu iters)\n",
              count_ns, span_ns, iters);
  json.Add({.op = "telemetry_null_count",
            .n = iters,
            .d = 0,
            .s = 0,
            .l = 0,
            .threads = 1,
            .wall_ms = count_ns * 1e-6 * static_cast<double>(iters),
            .words = 0,
            .wire_bytes = 0});
  json.Add({.op = "telemetry_null_span",
            .n = iters / 2,
            .d = 0,
            .s = 0,
            .l = 0,
            .threads = 1,
            .wall_ms = span_ns * 1e-6 * static_cast<double>(iters / 2),
            .words = 0,
            .wire_bytes = 0});

  if (baseline_path != nullptr) {
    return CheckAgainstBaseline(baseline_path, count_ns, span_ns);
  }
  std::printf(
      "\nEnabled overhead budget is <3%% on the table-1 shape; the "
      "null-sink gate runs in CI via --check.\n");
  return 0;
}
