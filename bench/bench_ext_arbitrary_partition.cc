// Experiment E5 (extension) — the paper's concluding open question:
// "what is the communication complexity of covariance sketch in the
// arbitrary partition model?" We realize a concrete upper bound with a
// shared-seed CountSketch (cost O(s*d/eps^2), independent of n) against
// the trivial O(s*n*d) of shipping the additive shares, across n and eps.

#include <cstdio>

#include "dist/additive_cluster.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

void Sweep() {
  const size_t s = 8;
  const size_t d = 24;
  std::printf("  %-8s %-7s %-12s %-12s %-12s\n", "n", "eps",
              "exact words", "cs words", "cs err/budget");
  for (size_t n : {256u, 1024u, 4096u}) {
    const Matrix a = GenerateZipfSpectrum(
        {.rows = n, .cols = d, .alpha = 0.8, .seed = n});
    for (double eps : {0.3, 0.15}) {
      auto cluster = AdditiveCluster::Create(SplitAdditive(a, s, 7), eps);
      DS_CHECK(cluster.ok());
      auto exact = RunAdditiveExact(*cluster);
      DS_CHECK(exact.ok());
      auto cs = RunAdditiveCountSketch(*cluster, {.eps = eps, .seed = 3});
      DS_CHECK(cs.ok());
      std::printf("  %-8zu %-7.3g %-12llu %-12llu %-12.3f\n", n, eps,
                  static_cast<unsigned long long>(exact->comm.total_words),
                  static_cast<unsigned long long>(cs->comm.total_words),
                  CovarianceError(a, cs->sketch) /
                      (eps * SquaredFrobeniusNorm(a)));
    }
  }
}

}  // namespace
}  // namespace distsketch

int main() {
  std::printf(
      "E5 (extension): covariance sketch in the arbitrary partition "
      "model (conclusion's open question)\n"
      "  upper bound realized: shared-seed CountSketch, O(s*d/eps^2) "
      "words independent of n\n\n");
  distsketch::Sweep();
  std::printf(
      "\n  Reading: the linear-sketch cost is flat in n while the trivial "
      "protocol scales with it; the error stays within the eps*||A||_F^2 "
      "budget even though every share is dense noise individually. "
      "Whether the eps-dependence can be improved to match the "
      "row-partition bounds is the open part of the question.\n");
  return 0;
}
