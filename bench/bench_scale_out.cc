// E12: scale-out sweep of the aggregation topologies. Stars ship every
// per-server sketch straight to the coordinator, so coordinator inbound
// bytes grow as O(s * message); k-ary trees fold sketches at interior
// servers and the coordinator receives only the top level — the sweep
// measures exactly that gap over s in {64, 256, 1024} for the three
// mergeable protocols (fd_merge, exact_gram, countsketch), plus:
//
//   - Zipf-skewed shards (workload realism: a few servers hold most
//     rows; the tree's inbound win is partition-independent),
//   - sparse-aware local compute (CSR Gram vs dense Gram at ~2% nnz),
//   - chaos at scale (interior-node deaths at s=256 under tree(8):
//     re-parenting keeps the run alive, degraded accounting stays
//     honest).
//
// `--smoke` shrinks the sweep to s <= 256 for CTest / CI. `--check
// <baseline.json>` gates the measured ratios against the committed
// floors in bench/scale_out_baseline.json and exits nonzero on a
// regression. The inbound-bytes floor (>= 8x) is hardware-independent;
// the wall floors are conservative because the tree's wall win comes
// from per-level merge parallelism, which a single-core host cannot
// show (there the honest expectation is parity, and the floor only
// guards against the tree becoming outright slower).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "dist/countsketch_protocol.h"
#include "dist/exact_gram_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "linalg/blas.h"
#include "linalg/csr_matrix.h"
#include "workload/generators.h"
#include "workload/partition.h"

namespace distsketch {
namespace {

struct RunResult {
  double wall_ms = 0.0;
  uint64_t words = 0;
  uint64_t wire_bytes = 0;
  uint64_t coord_wire_bytes = 0;
  double bound_widening = 0.0;
  size_t lost_servers = 0;
};

/// Best-of-reps run of one protocol on one cluster; coordinator inbound
/// is read off the CommLog of the last (identical) run.
RunResult RunProtocol(SketchProtocol& protocol, Cluster& cluster, int reps) {
  RunResult out;
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    bench::WallTimer timer;
    auto result = protocol.Run(cluster);
    const double ms = timer.ElapsedMs();
    DS_CHECK(result.ok());
    if (best < 0.0 || ms < best) best = ms;
    out.words = result->comm.total_words;
    out.wire_bytes = result->comm.total_wire_bytes;
    out.bound_widening = result->degraded.BoundWidening();
    out.lost_servers = result->degraded.lost_servers.size();
  }
  out.wall_ms = best;
  out.coord_wire_bytes = cluster.log().WireBytesReceivedBy(kCoordinator);
  return out;
}

std::string TopologyLabel(const MergeTopologyOptions& topology) {
  if (topology.is_star()) return "star";
  return std::string(TopologyKindName(topology.kind)) +
         std::to_string(topology.fanout);
}

void Report(const char* op, size_t s, const std::string& topology,
            const RunResult& r) {
  std::printf("%-22s s=%5zu %-6s %9.2f ms %10llu words %10llu coord B\n",
              op, s, topology.c_str(), r.wall_ms,
              static_cast<unsigned long long>(r.words),
              static_cast<unsigned long long>(r.coord_wire_bytes));
}

double JsonNumber(const std::string& text, const std::string& key,
                  double fallback) {
  const std::string tag = "\"" + key + "\":";
  size_t pos = text.find(tag);
  if (pos == std::string::npos) return fallback;
  pos += tag.size();
  return std::strtod(text.c_str() + pos, nullptr);
}

/// Measured star/tree and dense/sparse ratios the --check gate audits.
struct GateRatios {
  double fd_inbound = 0.0;
  double fd_wall = 0.0;
  double gram_inbound = 0.0;
  double gram_wall = 0.0;
  double sparse_gram = 0.0;
};

int CheckAgainstBaseline(const char* path, bool smoke,
                         const GateRatios& measured) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path);
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const char* mode = smoke ? "smoke" : "full";
  const double inbound_min = JsonNumber(
      text, std::string(mode) + "_inbound_ratio_min", -1.0);
  const double wall_min =
      JsonNumber(text, std::string(mode) + "_wall_ratio_min", -1.0);
  const double sparse_min = JsonNumber(
      text, std::string(mode) + "_sparse_gram_ratio_min", -1.0);
  if (inbound_min <= 0.0 || wall_min <= 0.0 || sparse_min <= 0.0) {
    std::fprintf(stderr, "baseline %s missing %s-mode floors\n", path, mode);
    return 2;
  }
  int rc = 0;
  const auto gate = [&rc](const char* what, double value, double floor) {
    std::printf("gate %-28s %8.2fx (floor %.2fx)%s\n", what, value, floor,
                value >= floor ? "" : "  FAIL");
    if (value < floor) rc = 1;
  };
  gate("fd_merge coord inbound", measured.fd_inbound, inbound_min);
  gate("exact_gram coord inbound", measured.gram_inbound, inbound_min);
  gate("fd_merge wall star/tree", measured.fd_wall, wall_min);
  gate("exact_gram wall star/tree", measured.gram_wall, wall_min);
  gate("sparse gram kernel", measured.sparse_gram, sparse_min);
  return rc;
}

}  // namespace
}  // namespace distsketch

int main(int argc, char** argv) {
  using namespace distsketch;
  bool smoke = false;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  std::printf("Scale-out sweep: star vs tree(8) aggregation\n\n");

  const std::vector<size_t> sweep =
      smoke ? std::vector<size_t>{64, 256} : std::vector<size_t>{64, 256, 1024};
  const size_t n = smoke ? 1024 : 4096;
  const size_t d = smoke ? 32 : 64;
  const double eps = 0.15;
  const int reps = smoke ? 1 : 3;
  const size_t threads = ThreadPool::Global().num_threads();
  const size_t s_gate = sweep.back();

  const Matrix a = GenerateLowRankPlusNoise({.rows = n,
                                             .cols = d,
                                             .rank = 8,
                                             .decay = 0.6,
                                             .top_singular_value = 30.0,
                                             .noise_stddev = 0.3,
                                             .seed = 7});
  bench::BenchJsonWriter json;
  GateRatios gates;

  const MergeTopologyOptions topologies[] = {MergeTopologyOptions::Star(),
                                             MergeTopologyOptions::Tree(8)};

  bench::Section("topology sweep (round-robin shards)");
  for (const size_t s : sweep) {
    RunResult star_fd, tree_fd, star_gram, tree_gram;
    for (const MergeTopologyOptions& topo : topologies) {
      const std::string label = TopologyLabel(topo);
      Cluster cluster = bench::MakeCluster(a, s, eps);

      FdMergeProtocol fd({.eps = eps, .k = 0, .topology = topo});
      const RunResult fd_r = RunProtocol(fd, cluster, reps);
      Report("fd_merge", s, label, fd_r);
      json.Add({.op = "fd_merge",
                .n = n,
                .d = d,
                .s = s,
                .l = static_cast<size_t>(1.0 / eps) + 2,
                .threads = threads,
                .wall_ms = fd_r.wall_ms,
                .words = fd_r.words,
                .wire_bytes = fd_r.wire_bytes,
                .topology = label,
                .coord_wire_bytes = fd_r.coord_wire_bytes});

      ExactGramProtocol gram({.topology = topo});
      const RunResult gram_r = RunProtocol(gram, cluster, reps);
      Report("exact_gram", s, label, gram_r);
      json.Add({.op = "exact_gram",
                .n = n,
                .d = d,
                .s = s,
                .l = d,
                .threads = threads,
                .wall_ms = gram_r.wall_ms,
                .words = gram_r.words,
                .wire_bytes = gram_r.wire_bytes,
                .topology = label,
                .coord_wire_bytes = gram_r.coord_wire_bytes});

      CountSketchProtocol cs({.eps = 0.3,
                              .oversample = 2.0,
                              .seed = 29,
                              .topology = topo});
      const RunResult cs_r = RunProtocol(cs, cluster, reps);
      Report("countsketch", s, label, cs_r);
      json.Add({.op = "countsketch",
                .n = n,
                .d = d,
                .s = s,
                .l = 0,
                .threads = threads,
                .wall_ms = cs_r.wall_ms,
                .words = cs_r.words,
                .wire_bytes = cs_r.wire_bytes,
                .topology = label,
                .coord_wire_bytes = cs_r.coord_wire_bytes});

      if (topo.is_star()) {
        star_fd = fd_r;
        star_gram = gram_r;
      } else {
        tree_fd = fd_r;
        tree_gram = gram_r;
      }
    }
    if (s == s_gate) {
      gates.fd_inbound = static_cast<double>(star_fd.coord_wire_bytes) /
                         static_cast<double>(tree_fd.coord_wire_bytes);
      gates.fd_wall = star_fd.wall_ms / tree_fd.wall_ms;
      gates.gram_inbound = static_cast<double>(star_gram.coord_wire_bytes) /
                           static_cast<double>(tree_gram.coord_wire_bytes);
      gates.gram_wall = star_gram.wall_ms / tree_gram.wall_ms;
    }
  }

  // Zipf-skewed shards: the tree's inbound cut is partition-independent
  // (every server still sends one uplink), while the star's coordinator
  // takes the same s messages regardless of skew.
  bench::Section("zipf-skewed shards (alpha = 1)");
  {
    const size_t s = smoke ? 64 : 256;
    for (const MergeTopologyOptions& topo : topologies) {
      auto cluster = Cluster::Create(PartitionRowsZipf(a, s, 1.0), eps);
      DS_CHECK(cluster.ok());
      FdMergeProtocol fd({.eps = eps, .k = 0, .topology = topo});
      const RunResult r = RunProtocol(fd, *cluster, reps);
      const std::string label = TopologyLabel(topo);
      Report("fd_merge_zipf", s, label, r);
      json.Add({.op = "fd_merge_zipf",
                .n = n,
                .d = d,
                .s = s,
                .l = static_cast<size_t>(1.0 / eps) + 2,
                .threads = threads,
                .wall_ms = r.wall_ms,
                .words = r.words,
                .wire_bytes = r.wire_bytes,
                .topology = label,
                .coord_wire_bytes = r.coord_wire_bytes});
    }
  }

  // Sparse-aware local compute: CSR Gram (nnz-proportional scatter
  // kernel) vs dense Gram at ~2% density. Kernel-level ratio is the
  // gate; the protocol-level pair shows it end to end.
  bench::Section("sparse gram (2% density)");
  {
    const size_t sn = smoke ? 512 : 2048;
    const size_t sd = smoke ? 128 : 256;
    const Matrix sp = GenerateSparse(
        {.rows = sn, .cols = sd, .density = 0.02, .value_stddev = 1.0,
         .seed = 11});
    const CsrMatrix csr = CsrMatrix::FromDense(sp);
    const int kreps = smoke ? 3 : 5;
    double dense_ms = -1.0, sparse_ms = -1.0;
    for (int r = 0; r < kreps; ++r) {
      bench::WallTimer t1;
      const Matrix g1 = Gram(sp);
      const double m1 = t1.ElapsedMs();
      if (dense_ms < 0.0 || m1 < dense_ms) dense_ms = m1;
      bench::WallTimer t2;
      const Matrix g2 = csr.Gram();
      const double m2 = t2.ElapsedMs();
      if (sparse_ms < 0.0 || m2 < sparse_ms) sparse_ms = m2;
      DS_CHECK(MaxAbs(Subtract(g1, g2)) < 1e-9);
    }
    gates.sparse_gram = dense_ms / sparse_ms;
    std::printf("gram kernel %zux%zu: dense %.3f ms, sparse %.3f ms "
                "(%.1fx)\n",
                sn, sd, dense_ms, sparse_ms, gates.sparse_gram);
    json.Add({.op = "gram_kernel_dense", .n = sn, .d = sd, .s = 0, .l = 0,
              .threads = 1, .wall_ms = dense_ms, .words = 0,
              .wire_bytes = 0});
    json.Add({.op = "gram_kernel_sparse", .n = sn, .d = sd, .s = 0, .l = 0,
              .threads = 1, .wall_ms = sparse_ms, .words = 0,
              .wire_bytes = 0});

    const size_t s = 16;
    for (const bool use_sparse : {false, true}) {
      auto parts = PartitionRows(sp, s, PartitionScheme::kRoundRobin);
      auto cluster = use_sparse ? Cluster::CreateSparse(parts, eps)
                                : Cluster::Create(parts, eps);
      DS_CHECK(cluster.ok());
      ExactGramProtocol gram({.topology = MergeTopologyOptions::Star(),
                              .use_sparse = use_sparse});
      const RunResult r = RunProtocol(gram, *cluster, kreps);
      const char* op = use_sparse ? "exact_gram_sparse_input"
                                  : "exact_gram_dense_input";
      Report(op, s, "star", r);
      json.Add({.op = op,
                .n = sn,
                .d = sd,
                .s = s,
                .l = sd,
                .threads = threads,
                .wall_ms = r.wall_ms,
                .words = r.words,
                .wire_bytes = r.wire_bytes,
                .topology = "star",
                .coord_wire_bytes = r.coord_wire_bytes});
    }
  }

  // Chaos at scale: interior-node deaths plus flaky links under tree(8).
  // Re-parenting keeps every surviving subtree's contribution; the
  // degraded bound widens by exactly the dead nodes' local masses.
  bench::Section("chaos at scale (tree(8), interior deaths)");
  {
    const size_t s = smoke ? 64 : 256;
    Cluster cluster = bench::MakeCluster(a, s, eps);
    FaultConfig config;
    config.default_profile.drop_prob = 0.02;
    config.default_profile.truncate_prob = 0.01;
    // Interior merge nodes of the contiguous tree(8): block heads.
    // Die after the mass-report round (reports are ~1 virtual time unit
    // each, plus timeout on faulted attempts) but during the uplink
    // stages, so the accounting stays finite while re-parenting runs.
    config.per_server[8].die_at_time = 90.0;
    config.per_server[16].die_at_time = 75.0;
    config.seed = 4242;
    cluster.InstallFaultPlan(config);
    FdMergeProtocol fd({.eps = eps,
                        .k = 0,
                        .topology = MergeTopologyOptions::Tree(8)});
    const RunResult r = RunProtocol(fd, cluster, reps);
    Report("fd_merge_tree_chaos", s, "tree8", r);
    std::printf("  lost servers: %zu, bound widening: %.3f\n",
                r.lost_servers, r.bound_widening);
    json.Add({.op = "fd_merge_tree_chaos",
              .n = n,
              .d = d,
              .s = s,
              .l = static_cast<size_t>(1.0 / eps) + 2,
              .threads = threads,
              .wall_ms = r.wall_ms,
              .words = r.words,
              .wire_bytes = r.wire_bytes,
              .topology = "tree8",
              .coord_wire_bytes = r.coord_wire_bytes});
  }

  std::printf("\nratios at s=%zu: fd inbound %.1fx wall %.2fx | gram "
              "inbound %.1fx wall %.2fx | sparse gram %.1fx\n",
              s_gate, gates.fd_inbound, gates.fd_wall, gates.gram_inbound,
              gates.gram_wall, gates.sparse_gram);

  if (baseline_path != nullptr) {
    return CheckAgainstBaseline(baseline_path, smoke, gates);
  }
  return 0;
}
