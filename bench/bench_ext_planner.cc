// Experiment E4 (extension) — the Table 1 cost model as a planner: for a
// grid of (s, eps) instances, which protocol is predicted cheapest, and
// does the prediction agree with metered reality? This paints the regime
// map the paper's Table 1 implies: exact Gram at coarse accuracy
// (1/eps >= d), sampling for weak-guarantee fleets, FD in the
// deterministic column, SVS/adaptive in the randomized sweet spot.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "dist/protocol_planner.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

void RegimeMap(size_t k) {
  const size_t d = 96;
  std::printf("\n  regime map, d=%zu, k=%zu (predicted cheapest):\n", d, k);
  std::printf("  %-10s", "s \\ eps");
  const double epsilons[] = {0.4, 0.2, 0.1, 0.05, 0.02, 0.01};
  for (double eps : epsilons) std::printf("%-16.3g", eps);
  std::printf("\n");
  for (size_t s : {2u, 8u, 32u, 128u, 512u, 2048u}) {
    std::printf("  %-10zu", s);
    for (double eps : epsilons) {
      SketchRequest req;
      req.eps = eps;
      req.k = k;
      auto plan = PlanSketchProtocol(s, d, req);
      DS_CHECK(plan.ok());
      std::printf("%-16s", std::string(plan->protocol->Name()).c_str());
    }
    std::printf("\n");
  }
}

void AuditPredictions() {
  std::printf("\n  prediction audit (metered vs predicted words):\n");
  const Matrix a = GenerateZipfSpectrum(
      {.rows = 2048, .cols = 48, .alpha = 0.8, .seed = 1});
  for (size_t s : {4u, 16u, 64u}) {
    for (double eps : {0.2, 0.1}) {
      SketchRequest req;
      req.eps = eps;
      req.k = 0;
      auto plan = PlanSketchProtocol(s, 48, req);
      DS_CHECK(plan.ok());
      Cluster cluster = bench::MakeCluster(a, s, eps);
      auto result = plan->protocol->Run(cluster);
      DS_CHECK(result.ok());
      std::printf(
          "    s=%-4zu eps=%-5.3g chose %-13s predicted=%-9.0f "
          "measured=%-9llu (%.2fx)\n",
          s, eps, std::string(plan->protocol->Name()).c_str(),
          plan->predicted_words,
          static_cast<unsigned long long>(result->comm.total_words),
          static_cast<double>(result->comm.total_words) /
              plan->predicted_words);
    }
  }
}

}  // namespace
}  // namespace distsketch

int main() {
  std::printf(
      "E4 (extension): protocol planner — Table 1 as a cost model\n");
  distsketch::RegimeMap(/*k=*/0);
  distsketch::RegimeMap(/*k=*/4);
  distsketch::AuditPredictions();
  return 0;
}
