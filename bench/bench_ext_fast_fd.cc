// Experiment E2 (extension) — the fast randomized FD of [15] (cited in
// §2) vs the exact FD of [27]: wall-clock sketching time and achieved
// covariance error at equal sketch size. The paper uses exact FD in every
// theorem (determinism matters for Thm 2); this ablation quantifies what
// the randomized shrink buys and costs.

#include <cstdio>

#include "common/stopwatch.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "sketch/fast_frequent_directions.h"
#include "sketch/frequent_directions.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

void RunCase(size_t n, size_t d, size_t sketch_size) {
  const Matrix a = GenerateLowRankPlusNoise({.rows = n,
                                             .cols = d,
                                             .rank = 8,
                                             .decay = 0.7,
                                             .top_singular_value = 50.0,
                                             .noise_stddev = 0.4,
                                             .seed = d});
  Stopwatch watch;
  FrequentDirections exact(d, sketch_size);
  exact.AppendRows(a);
  const Matrix b_exact = exact.Sketch();
  const double t_exact = watch.ElapsedMillis();

  watch.Reset();
  FastFrequentDirections fast(d, sketch_size, 7);
  fast.AppendRows(a);
  const Matrix b_fast = fast.Sketch();
  const double t_fast = watch.ElapsedMillis();

  const double f2 = SquaredFrobeniusNorm(a);
  std::printf(
      "  n=%-6zu d=%-4zu l=%-3zu | exact: %7.1f ms err=%.5f | fast: %7.1f "
      "ms err=%.5f | speedup %.1fx\n",
      n, d, sketch_size, t_exact, CovarianceError(a, b_exact) / f2, t_fast,
      CovarianceError(a, b_fast) / f2, t_exact / t_fast);
}

}  // namespace
}  // namespace distsketch

int main() {
  using namespace distsketch;
  std::printf(
      "E2 (extension): exact FD [27] vs randomized fast FD [15] — time "
      "and coverr/||A||_F^2 at equal sketch size\n\n");
  RunCase(2048, 64, 16);
  RunCase(2048, 64, 32);
  RunCase(2048, 128, 16);
  RunCase(2048, 128, 32);
  RunCase(8192, 64, 32);
  std::printf(
      "\n  Reading: the randomized shrink wins more as d and l grow (its "
      "cost is ~l*d*(l+p)*q per shrink vs the exact Jacobi's l^2 "
      "sweeps), at a small and bounded error premium.\n");
  return 0;
}
