// Experiment F4 — error/communication trade-off curves implied by
// Definitions 1-3: for each protocol we sweep its accuracy knob and plot
// (words, covariance error, k-projection error) on two spectra — a
// low-effective-rank workload (where (eps,k)-sketches shine) and a
// heavy-tailed Zipf workload.

#include <cstdio>

#include "bench/bench_util.h"
#include "dist/adaptive_sketch_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "dist/row_sampling_protocol.h"
#include "dist/svs_protocol.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

using bench::MakeCluster;
using bench::Section;

void Curve(const Matrix& a, size_t s, size_t k) {
  const double f2 = SquaredFrobeniusNorm(a);
  std::printf("  %-18s %-7s %-10s %-14s %-14s\n", "algo", "eps", "words",
              "coverr/|A|F2", "projerr/opt");
  for (double eps : {0.4, 0.2, 0.1, 0.05}) {
    Cluster cluster = MakeCluster(a, s, eps);
    const double opt = OptimalTailEnergy(a, k);

    FdMergeProtocol fd({.eps = eps, .k = k});
    auto fd_result = fd.Run(cluster);
    DS_CHECK(fd_result.ok());
    std::printf("  %-18s %-7.3g %-10llu %-14.4f %-14.4f\n", "fd_merge",
                eps,
                static_cast<unsigned long long>(fd_result->comm.total_words),
                CovarianceError(a, fd_result->sketch) / f2,
                ProjectionError(a, fd_result->sketch, k) / opt);

    AdaptiveSketchProtocol adaptive(
        {.eps = eps, .k = k, .delta = 0.1, .seed = 7});
    auto ad = adaptive.Run(cluster);
    DS_CHECK(ad.ok());
    std::printf("  %-18s %-7.3g %-10llu %-14.4f %-14.4f\n", "adaptive",
                eps, static_cast<unsigned long long>(ad->comm.total_words),
                CovarianceError(a, ad->sketch) / f2,
                ProjectionError(a, ad->sketch, k) / opt);

    RowSamplingProtocol sampling({.eps = eps, .oversample = 2.0, .seed = 9});
    auto sr = sampling.Run(cluster);
    DS_CHECK(sr.ok());
    std::printf("  %-18s %-7.3g %-10llu %-14.4f %-14.4f\n", "row_sampling",
                eps, static_cast<unsigned long long>(sr->comm.total_words),
                CovarianceError(a, sr->sketch) / f2,
                ProjectionError(a, sr->sketch, k) / opt);

    SvsProtocol svs({.alpha = eps / 4.0, .delta = 0.1, .seed = 11});
    auto sv = svs.Run(cluster);
    DS_CHECK(sv.ok());
    std::printf("  %-18s %-7.3g %-10llu %-14.4f %-14.4f\n", "svs", eps,
                static_cast<unsigned long long>(sv->comm.total_words),
                CovarianceError(a, sv->sketch) / f2,
                ProjectionError(a, sv->sketch, k) / opt);
  }
}

}  // namespace
}  // namespace distsketch

int main() {
  using namespace distsketch;
  std::printf(
      "F4: error vs communication trade-off (s=16, d=48, k=4)\n");
  bench::Section("low-effective-rank workload (rank 8, decaying)");
  const Matrix low_rank = GenerateLowRankPlusNoise({.rows = 3072,
                                                    .cols = 48,
                                                    .rank = 8,
                                                    .decay = 0.6,
                                                    .top_singular_value =
                                                        100.0,
                                                    .noise_stddev = 0.4,
                                                    .seed = 1});
  Curve(low_rank, 16, 4);

  bench::Section("heavy-tailed Zipf workload (alpha = 0.8)");
  const Matrix zipf = GenerateZipfSpectrum({.rows = 3072,
                                            .cols = 48,
                                            .alpha = 0.8,
                                            .top_singular_value = 100.0,
                                            .seed = 2});
  Curve(zipf, 16, 4);

  std::printf(
      "\n  Reading: on the low-rank workload the adaptive sketch achieves "
      "near-optimal projection error with far fewer words than fd_merge; "
      "row sampling's weak eps*||A||_F^2 guarantee translates to poor "
      "projection error per word on both spectra.\n");
  return 0;
}
