// Experiment E7 — parallel scaling of the local-sketch hot path, and the
// Gram-eigen vs Jacobi-SVD fast-shrink A/B (see EXPERIMENTS.md §E7).
//
// Part 1 sweeps the global thread pool over {1, 2, 4, 8} and times the
// fd_merge protocol end to end: the per-server FD compression dominates,
// so wall time should drop roughly linearly until threads exceed servers
// or cores. The sketches are asserted bit-identical across thread counts
// (the engine's core promise), so speedup is never bought with drift.
//
// Part 2 pins one thread and A/Bs the two FD shrink kernels on a tall
// d >> l instance, where the Gram path's O(l^2 d) beats Jacobi's
// O(d l^2 * sweeps).
//
// Every measurement is appended to BENCH_sketch.json. `--smoke` shrinks
// the instance so the binary doubles as a CTest perf-smoke (label
// perf-smoke): it verifies the machinery, not the speedup.

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "dist/fd_merge_protocol.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "sketch/frequent_directions.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

using bench::BenchJsonWriter;
using bench::BenchRecord;
using bench::MakeCluster;
using bench::Section;
using bench::WallTimer;

struct Sizes {
  size_t n, d, s;
  double eps;
  size_t shrink_n, shrink_d, shrink_l;
};

constexpr Sizes kFull = {.n = 50000,
                         .d = 512,
                         .s = 8,
                         .eps = 0.1,
                         .shrink_n = 20000,
                         .shrink_d = 2048,
                         .shrink_l = 64};
constexpr Sizes kSmoke = {.n = 800,
                          .d = 48,
                          .s = 4,
                          .eps = 0.2,
                          .shrink_n = 300,
                          .shrink_d = 96,
                          .shrink_l = 8};

void SweepThreads(const Sizes& sz, BenchJsonWriter& json) {
  Section("E7a: fd_merge wall time vs threads");
  std::printf("  n=%zu d=%zu s=%zu eps=%g\n", sz.n, sz.d, sz.s, sz.eps);
  const Matrix a = GenerateZipfSpectrum({.rows = sz.n,
                                         .cols = sz.d,
                                         .alpha = 0.8,
                                         .top_singular_value = 100.0,
                                         .seed = 1});
  Cluster cluster = MakeCluster(a, sz.s, sz.eps);
  FdMergeProtocol protocol({.eps = sz.eps, .k = 0});

  Matrix reference;
  double base_ms = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    WallTimer timer;
    auto result = protocol.Run(cluster);
    const double ms = timer.ElapsedMs();
    DS_CHECK(result.ok());
    if (threads == 1) {
      reference = result->sketch;
      base_ms = ms;
    } else {
      DS_CHECK(result->sketch == reference);  // speedup never buys drift
    }
    std::printf("  threads=%zu wall_ms=%9.2f speedup=%5.2fx words=%llu\n",
                threads, ms, base_ms / ms,
                static_cast<unsigned long long>(result->comm.total_words));
    json.Add(BenchRecord{.op = "fd_merge",
                         .n = sz.n,
                         .d = sz.d,
                         .s = sz.s,
                         .l = result->sketch_rows,
                         .threads = threads,
                         .wall_ms = ms,
                         .words = result->comm.total_words});
  }
  ThreadPool::SetGlobalThreads(1);
}

void ShrinkKernelAb(const Sizes& sz, BenchJsonWriter& json) {
  Section("E7b: FD shrink kernel A/B (Gram-eigen vs Jacobi SVD)");
  std::printf("  n=%zu d=%zu l=%zu (d > 2l: the Gram regime)\n", sz.shrink_n,
              sz.shrink_d, sz.shrink_l);
  const Matrix a = GenerateZipfSpectrum({.rows = sz.shrink_n,
                                         .cols = sz.shrink_d,
                                         .alpha = 0.8,
                                         .top_singular_value = 100.0,
                                         .seed = 2});
  ThreadPool::SetGlobalThreads(1);
  const FdShrinkKernel saved = GetFdShrinkKernel();
  struct Case {
    const char* name;
    FdShrinkKernel kernel;
  };
  for (const Case& c : {Case{"fd_shrink_gram", FdShrinkKernel::kGramEigen},
                        Case{"fd_shrink_jacobi", FdShrinkKernel::kJacobiSvd}}) {
    SetFdShrinkKernel(c.kernel);
    WallTimer timer;
    FrequentDirections fd(sz.shrink_d, sz.shrink_l);
    fd.AppendRows(a);
    const Matrix b = fd.Sketch();
    const double ms = timer.ElapsedMs();
    std::printf("  %-18s wall_ms=%9.2f coverr/||A||_F^2=%.3e\n", c.name, ms,
                CovarianceError(a, b) / SquaredFrobeniusNorm(a));
    json.Add(BenchRecord{.op = c.name,
                         .n = sz.shrink_n,
                         .d = sz.shrink_d,
                         .s = 1,
                         .l = sz.shrink_l,
                         .threads = 1,
                         .wall_ms = ms,
                         .words = 0});
  }
  SetFdShrinkKernel(saved);
}

}  // namespace
}  // namespace distsketch

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const distsketch::Sizes& sz = smoke ? distsketch::kSmoke : distsketch::kFull;
  std::printf("E7: parallel scaling of the local-sketch hot path%s\n",
              smoke ? " (smoke sizes)" : "");
  distsketch::bench::BenchJsonWriter json;
  distsketch::SweepThreads(sz, json);
  distsketch::ShrinkKernelAb(sz, json);
  json.Flush();
  std::printf("\nwrote BENCH_sketch.json\n");
  return 0;
}
