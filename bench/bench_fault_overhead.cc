// Fault-layer overhead: what does the deterministic fault simulation
// cost, in wall time and in metered words, relative to the ideal
// network? Three settings per protocol: no plan installed, a plan with
// every probability at zero (the layer threads every send through the
// injector but must change nothing), and a lossy plan (drops +
// duplicates + truncation with retries). The retransmit share quantifies
// the chaos tax on communication.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "dist/adaptive_sketch_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "dist/svs_protocol.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

FaultConfig LossyConfig(uint64_t seed) {
  FaultConfig config;
  config.default_profile.drop_prob = 0.2;
  config.default_profile.duplicate_prob = 0.1;
  config.default_profile.truncate_prob = 0.1;
  config.default_profile.transient_fail_prob = 0.1;
  config.seed = seed;
  return config;
}

double RunMillis(SketchProtocol& protocol, Cluster& cluster, int reps,
                 SketchProtocolResult* last) {
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    auto result = protocol.Run(cluster);
    DS_CHECK(result.ok());
    *last = std::move(*result);
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() /
         reps;
}

void BenchProtocol(const char* name, SketchProtocol& protocol,
                   Cluster& cluster, int reps) {
  SketchProtocolResult result;

  cluster.ClearFaultPlan();
  const double ms_ideal = RunMillis(protocol, cluster, reps, &result);
  const uint64_t words_ideal = result.comm.total_words;

  cluster.InstallFaultPlan(FaultConfig{});
  const double ms_zero = RunMillis(protocol, cluster, reps, &result);
  DS_CHECK(result.comm.total_words == words_ideal);
  DS_CHECK(result.comm.retransmit_words == 0);

  cluster.InstallFaultPlan(LossyConfig(17));
  const double ms_lossy = RunMillis(protocol, cluster, reps, &result);
  const CommStats& lossy = result.comm;
  const double retrans_share =
      lossy.total_words == 0
          ? 0.0
          : static_cast<double>(lossy.retransmit_words) /
                static_cast<double>(lossy.total_words);

  std::printf(
      "%-16s ideal %8.3f ms %7llu w | zero-prob %8.3f ms (x%.2f) | "
      "lossy %8.3f ms %7llu w, retrans %4.1f%%, lost %zu\n",
      name, ms_ideal, static_cast<unsigned long long>(words_ideal), ms_zero,
      ms_zero / ms_ideal, ms_lossy,
      static_cast<unsigned long long>(lossy.total_words),
      100.0 * retrans_share, result.degraded.lost_servers.size());
  cluster.ClearFaultPlan();
}

}  // namespace
}  // namespace distsketch

int main() {
  using namespace distsketch;
  std::printf(
      "Fault-injection overhead: ideal network vs zero-probability plan "
      "vs lossy plan\n\n");
  const Matrix a = GenerateLowRankPlusNoise({.rows = 400,
                                             .cols = 24,
                                             .rank = 5,
                                             .decay = 0.7,
                                             .top_singular_value = 40.0,
                                             .noise_stddev = 0.4,
                                             .seed = 1});
  Cluster cluster = bench::MakeCluster(a, 8, 0.3);
  const int reps = 20;

  FdMergeProtocol fd({.eps = 0.3, .k = 3});
  BenchProtocol("fd_merge", fd, cluster, reps);

  SvsProtocol svs({.alpha = 0.15, .delta = 0.05, .seed = 13});
  BenchProtocol("svs", svs, cluster, reps);

  AdaptiveSketchProtocol adaptive({.eps = 0.3, .k = 3, .seed = 19});
  BenchProtocol("adaptive_sketch", adaptive, cluster, reps);

  std::printf(
      "\nThe zero-prob column certifies the pass-through claim: word "
      "counts are checked identical to the ideal run.\n");
  return 0;
}
