// Soak demo for the multi-tenant sketch service: drives >= 1000
// concurrent tenants through the async channel under a chaotic fault
// plan, with a residency cap far below the tenant count so eviction /
// checkpoint-restore churns continuously. A never-evicted shadow sketch
// per tenant pins bit-identical answers; every accepted submit must be
// answered (no stuck tenants); admission overflow and channel overload
// must surface as typed kOverloaded. Exits non-zero on any violation and
// writes a telemetry run report with per-tenant attribution.
//
// Usage: service_demo [--tenants N] [--rounds R] [--report PATH]
//                     [--store DIR]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/fault_injection.h"
#include "service/service_runner.h"
#include "service/sketch_service.h"
#include "service/tenant.h"
#include "store/sketch_store.h"
#include "telemetry/run_report.h"
#include "telemetry/telemetry.h"
#include "workload/generators.h"

namespace distsketch {
namespace {

constexpr size_t kDim = 16;

uint64_t MatrixDigest(const Matrix& m) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  mix(m.rows());
  mix(m.cols());
  for (size_t i = 0; i < m.size(); ++i) {
    uint64_t bits;
    std::memcpy(&bits, m.data() + i, 8);
    mix(bits);
  }
  return h;
}

struct DemoConfig {
  size_t tenants = 1200;
  size_t rounds = 4;
  size_t rows_per_batch = 8;
  size_t max_resident = 256;
  std::string report_path = "service_demo_report.json";
  std::string store_dir;
};

int Fail(const char* what) {
  std::fprintf(stderr, "VIOLATION: %s\n", what);
  return 1;
}

int RunDemo(const DemoConfig& cfg) {
  const std::string store_dir =
      cfg.store_dir.empty()
          ? (std::filesystem::temp_directory_path() / "service_demo_store")
                .string()
          : cfg.store_dir;
  std::filesystem::remove_all(store_dir);
  auto store = SketchStore::Open(store_dir);
  if (!store.ok()) return Fail("store open failed");

  const TenantOptions tenant_opts{.dim = kDim, .eps = 0.25, .epoch_rows = 16};
  ServiceRunnerOptions options;
  options.service = {.tenant = tenant_opts,
                     .max_tenants = cfg.tenants,
                     .max_resident = cfg.max_resident,
                     .store = &*store};
  options.channel.peer_queue_capacity = 32;
  FaultConfig faults;
  faults.default_profile.drop_prob = 0.01;
  faults.default_profile.duplicate_prob = 0.02;
  faults.default_profile.corrupt_prob = 0.02;
  faults.default_profile.transient_fail_prob = 0.01;
  faults.seed = 20260807;
  options.faults = faults;

  auto runner = ServiceRunner::Create(options);
  if (!runner.ok()) return Fail("runner create failed");
  ServiceRunner& svc = **runner;

  auto tenant_name = [](size_t i) { return "t" + std::to_string(i); };

  // Never-evicted shadows, fed exactly the rows the service accepted.
  std::map<std::string, TenantSketch> shadows;
  for (size_t i = 0; i < cfg.tenants; ++i) {
    auto shadow = TenantSketch::Create(tenant_name(i), tenant_opts);
    if (!shadow.ok()) return Fail("shadow create failed");
    shadows.emplace(tenant_name(i), std::move(*shadow));
  }

  uint64_t ok_responses = 0, unavailable = 0, overloaded_responses = 0;

  // Ingest rounds: every tenant submits one batch per round from its own
  // client id; the callback replays accepted rows into the shadow so the
  // shadow tracks exactly what the service absorbed (wire-lost requests
  // are answered kUnavailable and absorbed by neither).
  for (size_t round = 0; round < cfg.rounds; ++round) {
    for (size_t i = 0; i < cfg.tenants; ++i) {
      const std::string name = tenant_name(i);
      const Matrix rows = GenerateGaussian(
          cfg.rows_per_batch, kDim, 1.0,
          static_cast<uint64_t>(round * cfg.tenants + i + 1));
      TenantSketch& shadow = shadows.at(name);
      Status s = svc.SubmitIngest(
          static_cast<int>(i), name, rows,
          [&, rows](const ServiceResponse& resp) {
            if (resp.code == StatusCode::kOk) {
              ++ok_responses;
              DS_CHECK(shadow.AbsorbRows(rows).ok());
              while (shadow.EpochReady()) shadow.SealEpoch();
            } else if (resp.code == StatusCode::kUnavailable) {
              ++unavailable;
            } else {
              ++overloaded_responses;
            }
          });
      if (!s.ok()) return Fail("ingest submit unexpectedly rejected");
      // Drain in sub-batches so queues stay under the per-client cap.
      if (i % 256 == 255) svc.Drain();
    }
    svc.Drain();
  }

  // Overload the admission path: tenants beyond max_tenants must get a
  // typed kOverloaded response, not silence.
  uint64_t admission_shed = 0;
  for (size_t i = 0; i < 8; ++i) {
    Status s = svc.SubmitIngest(
        static_cast<int>(cfg.tenants + i), "extra" + std::to_string(i),
        GenerateGaussian(2, kDim, 1.0, 9000 + i),
        [&admission_shed](const ServiceResponse& resp) {
          if (resp.code == StatusCode::kOverloaded) ++admission_shed;
        });
    if (!s.ok()) return Fail("admission probe submit rejected");
  }
  svc.Drain();

  // Overload one client's channel queue: submits beyond the queue cap
  // must shed with kOverloaded at the channel (callback never fires).
  // Tenant 0 leaves the bit-identity comparison after this (which flood
  // rows land depends on the fault schedule); it is checked for
  // liveness only.
  uint64_t channel_shed = 0;
  for (size_t i = 0; i < options.channel.peer_queue_capacity + 8; ++i) {
    Status s = svc.SubmitIngest(
        0, tenant_name(0), GenerateGaussian(1, kDim, 1.0, 7000 + i),
        [&](const ServiceResponse& resp) {
          if (resp.code == StatusCode::kOk) ++ok_responses;
        });
    if (!s.ok()) {
      if (s.code() != StatusCode::kOverloaded) {
        return Fail("channel shed was not typed kOverloaded");
      }
      ++channel_shed;
    }
  }
  if (channel_shed == 0) return Fail("channel never shed under flood");
  svc.Drain();

  // Final sweep: every tenant answers a query, and (except the flooded
  // tenant 0) matches its never-evicted shadow bit for bit. Queries run
  // from fresh client ids (a peer the injector declared permanently lost
  // stays lost), forcing restore churn across the whole registry; a
  // query the wire loses (kUnavailable) is retried from another fresh
  // client — a *stuck* tenant never answers, a lossy wire answers on
  // retry.
  std::vector<ServiceResponse> results(cfg.tenants);
  std::vector<uint8_t> answered(cfg.tenants, 0);
  int next_client = static_cast<int>(2 * cfg.tenants);
  auto submit_query = [&](size_t i) {
    return svc.Submit(next_client++, EncodeQueryRequest(tenant_name(i)),
                      [&results, &answered, i](const ServiceResponse& resp) {
                        results[i] = resp;
                        answered[i] = 1;
                      });
  };
  for (size_t i = 0; i < cfg.tenants; ++i) {
    if (!submit_query(i).ok()) return Fail("final query submit rejected");
    if (i % 128 == 127) svc.Drain();
  }
  svc.Drain();
  for (int attempt = 0; attempt < 4; ++attempt) {
    bool retried = false;
    for (size_t i = 0; i < cfg.tenants; ++i) {
      if (answered[i] && results[i].code != StatusCode::kUnavailable) continue;
      if (!submit_query(i).ok()) return Fail("retry query submit rejected");
      retried = true;
    }
    if (!retried) break;
    svc.Drain();
  }
  size_t mismatches = 0, unanswered = 0;
  for (size_t i = 0; i < cfg.tenants; ++i) {
    if (!answered[i] || results[i].code != StatusCode::kOk) {
      ++unanswered;
      continue;
    }
    if (i == 0) continue;  // flooded tenant: liveness only
    const std::string name = tenant_name(i);
    auto expect = shadows.at(name).Query();
    if (!expect.ok()) return Fail("shadow query failed");
    if (MatrixDigest(results[i].sketch) != MatrixDigest(*expect) ||
        results[i].rows_ingested != shadows.at(name).rows_ingested()) {
      std::fprintf(stderr, "tenant %s: sketch mismatch after %llu evictions\n",
                   name.c_str(),
                   static_cast<unsigned long long>(svc.service().evictions()));
      ++mismatches;
    }
  }

  const SketchService& service = svc.service();
  std::printf(
      "tenants=%zu resident=%zu evictions=%llu restores=%llu "
      "registry_shed=%llu channel_shed=%llu wire_lost=%llu\n"
      "accepted=%llu responded=%llu ok=%llu unavailable=%llu "
      "overloaded=%llu\n",
      service.known_tenants(), service.resident_tenants(),
      static_cast<unsigned long long>(service.evictions()),
      static_cast<unsigned long long>(service.restores()),
      static_cast<unsigned long long>(service.shed()),
      static_cast<unsigned long long>(channel_shed),
      static_cast<unsigned long long>(svc.wire_lost()),
      static_cast<unsigned long long>(svc.accepted()),
      static_cast<unsigned long long>(svc.responded()),
      static_cast<unsigned long long>(ok_responses),
      static_cast<unsigned long long>(unavailable),
      static_cast<unsigned long long>(overloaded_responses));

  int violations = 0;
  if (service.known_tenants() < 1000) {
    violations += Fail("fewer than 1000 tenants admitted");
  }
  if (mismatches > 0) violations += Fail("eviction/restore broke bit-identity");
  if (unanswered > 0) violations += Fail("stuck tenants: queries unanswered");
  if (svc.accepted() != svc.responded()) {
    violations += Fail("accepted submissions left unanswered");
  }
  if (service.evictions() == 0) violations += Fail("no eviction churn");
  if (service.restores() == 0) violations += Fail("no restore churn");
  if (admission_shed != 8) {
    violations += Fail("admission overflow not kOverloaded");
  }

  // Run report with per-tenant attribution.
  const CommStats stats = svc.log().Stats();
  telemetry::CommTotals totals;
  totals.words = stats.total_words;
  totals.bits = stats.total_bits;
  totals.wire_bytes = stats.total_wire_bytes;
  totals.control_wire_bytes = stats.control_wire_bytes;
  totals.num_messages = stats.num_messages;
  totals.num_retransmits = stats.num_retransmits;
  const telemetry::RunReport report = telemetry::BuildRunReport(
      *telemetry::Telemetry::Current(), "service_demo", totals);
  bool has_tenant_attribution = false;
  for (const auto& [name, value] : report.metrics.counters) {
    if (name.rfind("svc.tenant.", 0) == 0 && value > 0) {
      has_tenant_attribution = true;
      break;
    }
  }
  if (!has_tenant_attribution) {
    violations += Fail("run report lacks per-tenant attribution");
  }
  if (!telemetry::WriteRunReport(report, cfg.report_path)) {
    violations += Fail("run report write failed");
  } else {
    std::printf("run report: %s\n", cfg.report_path.c_str());
  }

  std::filesystem::remove_all(store_dir);
  if (violations > 0) return 1;
  std::printf("service_demo: all checks passed\n");
  return 0;
}

}  // namespace
}  // namespace distsketch

int main(int argc, char** argv) {
  distsketch::DemoConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--tenants") {
      if (const char* v = next()) cfg.tenants = std::strtoull(v, nullptr, 10);
    } else if (arg == "--rounds") {
      if (const char* v = next()) cfg.rounds = std::strtoull(v, nullptr, 10);
    } else if (arg == "--report") {
      if (const char* v = next()) cfg.report_path = v;
    } else if (arg == "--store") {
      if (const char* v = next()) cfg.store_dir = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  // The demo's acceptance checks need metrics regardless of DS_TELEMETRY.
  distsketch::telemetry::Telemetry telem;
  distsketch::telemetry::ScopedTelemetry scoped(telem);
  return distsketch::RunDemo(cfg);
}
