// Prints the SIMD backends available in this binary on this host, one
// per line, widest last. CI uses it to decide which DS_SIMD values the
// tier-1 matrix can exercise (`simd_probe | grep -qx avx2`); exits 0
// always — "scalar" is always printed.
//
// With --active, prints the single backend the dispatcher would resolve
// right now (DS_SIMD override included) instead.

#include <cstdio>
#include <cstring>

#include "common/cpu_features.h"
#include "linalg/simd_dispatch.h"

int main(int argc, char** argv) {
  using distsketch::SimdBackend;
  if (argc > 1 && std::strcmp(argv[1], "--active") == 0) {
    const auto name =
        distsketch::SimdBackendName(distsketch::ActiveSimdBackend());
    std::printf("%.*s\n", static_cast<int>(name.size()), name.data());
    return 0;
  }
  for (const SimdBackend backend :
       {SimdBackend::kScalar, SimdBackend::kAvx2, SimdBackend::kAvx512}) {
    if (!distsketch::SimdBackendSupported(backend)) continue;
    const auto name = distsketch::SimdBackendName(backend);
    std::printf("%.*s\n", static_cast<int>(name.size()), name.data());
  }
  return 0;
}
