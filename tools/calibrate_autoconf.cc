// Offline calibration sweep for the autoconf error predictor. Usage:
//
//   calibrate_autoconf --out <path>      rerun the sweep, write the table
//   calibrate_autoconf --check <path>    rerun the sweep, compare against
//                                        the committed table; exits non-zero
//                                        on >10% drift at any grid point
//   calibrate_autoconf --check <path> --tolerance 0.05   custom tolerance
//
// The sweep is deterministic (fixed spec, fixed seeds, protocols
// bit-identical at any DS_THREADS), so --check catches real behaviour
// changes — a protocol emitting different bytes or different errors —
// not environmental noise. CI runs the --check mode as the
// autoconf-smoke gate.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "autoconf/calibration.h"

using distsketch::autoconf::CalibrationTable;
using distsketch::autoconf::CalibrationTableToJson;
using distsketch::autoconf::DefaultCalibrationSpec;
using distsketch::autoconf::DiffCalibrationTables;
using distsketch::autoconf::LoadCalibrationTable;
using distsketch::autoconf::RunCalibrationSweep;

int main(int argc, char** argv) {
  std::string out_path;
  std::string check_path;
  double tolerance = 0.10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: calibrate_autoconf --out <path> | --check <path> "
                   "[--tolerance <frac>]\n");
      return 2;
    }
  }
  if (out_path.empty() == check_path.empty()) {
    std::fprintf(stderr, "exactly one of --out / --check is required\n");
    return 2;
  }

  std::printf("running calibration sweep...\n");
  auto fresh = RunCalibrationSweep(DefaultCalibrationSpec());
  if (!fresh.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 fresh.status().ToString().c_str());
    return 1;
  }
  std::printf("swept %zu grid points\n", fresh->points.size());

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << CalibrationTableToJson(*fresh);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  }

  auto committed = LoadCalibrationTable(check_path);
  if (!committed.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", check_path.c_str(),
                 committed.status().ToString().c_str());
    return 1;
  }
  const auto drift = DiffCalibrationTables(*committed, *fresh, tolerance);
  if (!drift.empty()) {
    std::fprintf(stderr,
                 "calibration drift beyond %.0f%% at %zu grid point(s):\n",
                 tolerance * 100.0, drift.size());
    for (const std::string& line : drift) {
      std::fprintf(stderr, "  %s\n", line.c_str());
    }
    std::fprintf(stderr,
                 "if the change is intentional, regenerate with --out and "
                 "commit the new table\n");
    return 1;
  }
  std::printf("calibration check passed: all %zu grid points within %.0f%%\n",
              committed->points.size(), tolerance * 100.0);
  return 0;
}
