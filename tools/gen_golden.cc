// Emits the v1 golden binaries that tests/wire/golden_compat_test.cc
// replays every CI run. Usage:
//
//   gen_golden <outdir>
//
// writes one file per artifact plus manifest.txt, whose lines are
//
//   <file> <kind> <bytes> <checksum-16-hex>
//
// Every value below is dyadic (exactly representable in binary64) and
// every state is built synthetically — no eigensolves, no Gaussians —
// so the emitted bytes are identical on any conforming platform. The
// committed goldens under tests/golden/ freeze format v1: regenerating
// must reproduce them byte-for-byte, and any diff is a wire break.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/matrix_io.h"
#include "linalg/matrix.h"
#include "sketch/quantizer.h"
#include "wire/checksum.h"
#include "wire/codec.h"
#include "wire/frame.h"
#include "wire/sketch_serde.h"

namespace distsketch {
namespace {

// Deterministic dyadic fill: entry (r, c) = (r * cols + c + salt) / 16 - 2.
Matrix DyadicMatrix(size_t rows, size_t cols, uint64_t salt) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m(r, c) = static_cast<double>(r * cols + c + salt) * 0.0625 - 2.0;
    }
  }
  return m;
}

FdSketchState GoldenFdState() {
  FdSketchState state;
  state.dim = 6;
  state.sketch_size = 4;
  state.buffer = DyadicMatrix(5, 6, 1);
  state.total_shrinkage = 3.5;
  state.shrink_count = 2;
  state.rows_seen = 37;
  return state;
}

struct Artifact {
  std::string file;
  std::string kind;
  std::vector<uint8_t> bytes;
};

Status Run(const std::string& outdir) {
  std::vector<Artifact> artifacts;

  artifacts.push_back(
      {"dense_3x5.payload", "dense_payload",
       wire::EncodeDensePayload(DyadicMatrix(3, 5, 0))});
  artifacts.push_back({"dense_0x4.payload", "dense_payload",
                       wire::EncodeDensePayload(Matrix(0, 4))});

  {
    DS_ASSIGN_OR_RETURN(QuantizeResult q,
                        QuantizeMatrix(DyadicMatrix(4, 4, 3), 1.0 / 1024.0));
    DS_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                        wire::EncodeQuantizedPayload(q));
    artifacts.push_back(
        {"quant_4x4_b" + std::to_string(q.bits_per_entry) + ".payload",
         "quantized_payload", std::move(payload)});
  }

  {
    wire::Frame frame;
    frame.tag = "local_sketch";
    frame.from = 3;
    frame.to = -1;
    frame.attempt = 1;
    frame.payload = wire::EncodeDensePayload(DyadicMatrix(2, 3, 7));
    artifacts.push_back(
        {"frame_local_sketch.frame", "frame", wire::EncodeFrame(frame)});
  }

  artifacts.push_back({"fd_state.sketch", "frequent_directions",
                       wire::SerializeSketchState(GoldenFdState())});

  {
    FastFdState state;
    state.dim = 5;
    state.sketch_size = 3;
    state.seed = 0xC0FFEE;
    state.buffer = DyadicMatrix(4, 5, 2);
    state.total_shrinkage = 1.25;
    state.shrink_count = 1;
    artifacts.push_back({"fast_fd_state.sketch", "fast_frequent_directions",
                         wire::SerializeSketchState(state)});
  }

  {
    wire::SvsSketchState state;
    state.sketch = DyadicMatrix(3, 4, 5);
    state.candidates = 12;
    state.sampled = 3;
    state.expected_sampled = 2.75;
    state.seed = 99;
    artifacts.push_back(
        {"svs_state.sketch", "svs", wire::SerializeSketchState(state)});
  }

  {
    AdaptiveSketchState state;
    state.dim = 6;
    state.eps = 0.25;
    state.k = 2;
    state.seed = 1234;
    state.fd = GoldenFdState();
    state.finished = true;
    state.head = DyadicMatrix(2, 6, 11);
    state.tail = DyadicMatrix(3, 6, 13);
    state.tail_mass = 17.5;
    artifacts.push_back(
        {"adaptive_state.sketch", "adaptive", wire::SerializeSketchState(state)});
  }

  {
    CountSketchState state;
    state.seed = 777;
    state.compressed = DyadicMatrix(4, 5, 17);
    artifacts.push_back({"countsketch_state.sketch", "countsketch",
                         wire::SerializeSketchState(state)});
  }

  {
    SlidingWindowState state;
    state.dim = 4;
    state.window = 16;
    state.eps = 0.5;
    state.block_rows = 4;
    SlidingWindowBlockState b0;
    b0.sketch = DyadicMatrix(2, 4, 19);
    b0.begin = 0;
    b0.end = 4;
    SlidingWindowBlockState b1;
    b1.sketch = DyadicMatrix(3, 4, 23);
    b1.begin = 4;
    b1.end = 8;
    state.blocks = {b0, b1};
    state.active.dim = 4;
    state.active.sketch_size = 4;
    state.active.buffer = DyadicMatrix(3, 4, 29);
    state.active.rows_seen = 3;
    state.active_begin = 8;
    state.rows_seen = 11;
    state.max_row_norm = 6.5;
    artifacts.push_back({"sliding_window_state.sketch", "sliding_window",
                         wire::SerializeSketchState(state)});
  }

  {
    RowSamplingState state;
    state.dim = 5;
    state.num_samples = 3;
    state.rng.s = {0x123456789ABCDEF0ull, 0x0FEDCBA987654321ull,
                   0xDEADBEEFCAFEF00Dull, 0x1111111122222222ull};
    state.rng.spare_gaussian = 0.5;
    state.rng.has_spare_gaussian = true;
    state.reservoir = DyadicMatrix(3, 5, 31);
    state.present = {1, 0, 1};
    for (size_t c = 0; c < 5; ++c) state.reservoir(1, c) = 0.0;
    state.weights = {2.25, 0.0, 4.5};
    state.total_mass = 10.75;
    artifacts.push_back({"row_sampling_state.sketch", "row_sampling",
                         wire::SerializeSketchState(state)});
  }

  {
    wire::CoordinatorCheckpoint checkpoint;
    checkpoint.protocol_id = 1;
    checkpoint.servers_total = 4;
    checkpoint.done = {1, 1, 0, 0};
    checkpoint.global_scalar = 42.5;
    checkpoint.sketch_blob = wire::SerializeSketchState(GoldenFdState());
    checkpoint.extra = DyadicMatrix(2, 4, 37);
    artifacts.push_back({"checkpoint_fd.sketch", "coordinator_checkpoint",
                         wire::EncodeCoordinatorCheckpoint(checkpoint)});
  }

  std::string manifest;
  for (const Artifact& a : artifacts) {
    DS_RETURN_IF_ERROR(WriteFileAtomic(outdir + "/" + a.file,
                                           a.bytes.data(), a.bytes.size()));
    char line[256];
    std::snprintf(line, sizeof(line), "%s %s %zu %016llx\n", a.file.c_str(),
                  a.kind.c_str(), a.bytes.size(),
                  static_cast<unsigned long long>(
                      Checksum64(a.bytes.data(), a.bytes.size())));
    manifest += line;
  }
  DS_RETURN_IF_ERROR(WriteFileAtomic(
      outdir + "/manifest.txt",
      reinterpret_cast<const uint8_t*>(manifest.data()), manifest.size()));
  std::printf("wrote %zu artifacts + manifest.txt to %s\n", artifacts.size(),
              outdir.c_str());
  return Status::OK();
}

}  // namespace
}  // namespace distsketch

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <outdir>\n", argv[0]);
    return 2;
  }
  distsketch::Status status = distsketch::Run(argv[1]);
  if (!status.ok()) {
    std::fprintf(stderr, "gen_golden: %s\n",
                 std::string(status.message()).c_str());
    return 1;
  }
  return 0;
}
