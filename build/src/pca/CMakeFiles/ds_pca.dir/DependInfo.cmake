
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pca/distributed_power_iteration.cc" "src/pca/CMakeFiles/ds_pca.dir/distributed_power_iteration.cc.o" "gcc" "src/pca/CMakeFiles/ds_pca.dir/distributed_power_iteration.cc.o.d"
  "/root/repo/src/pca/fd_pca.cc" "src/pca/CMakeFiles/ds_pca.dir/fd_pca.cc.o" "gcc" "src/pca/CMakeFiles/ds_pca.dir/fd_pca.cc.o.d"
  "/root/repo/src/pca/pca_quality.cc" "src/pca/CMakeFiles/ds_pca.dir/pca_quality.cc.o" "gcc" "src/pca/CMakeFiles/ds_pca.dir/pca_quality.cc.o.d"
  "/root/repo/src/pca/sketch_and_solve.cc" "src/pca/CMakeFiles/ds_pca.dir/sketch_and_solve.cc.o" "gcc" "src/pca/CMakeFiles/ds_pca.dir/sketch_and_solve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/ds_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/ds_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ds_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
