file(REMOVE_RECURSE
  "CMakeFiles/ds_pca.dir/distributed_power_iteration.cc.o"
  "CMakeFiles/ds_pca.dir/distributed_power_iteration.cc.o.d"
  "CMakeFiles/ds_pca.dir/fd_pca.cc.o"
  "CMakeFiles/ds_pca.dir/fd_pca.cc.o.d"
  "CMakeFiles/ds_pca.dir/pca_quality.cc.o"
  "CMakeFiles/ds_pca.dir/pca_quality.cc.o.d"
  "CMakeFiles/ds_pca.dir/sketch_and_solve.cc.o"
  "CMakeFiles/ds_pca.dir/sketch_and_solve.cc.o.d"
  "libds_pca.a"
  "libds_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
