# Empty compiler generated dependencies file for ds_pca.
# This may be replaced when dependencies are built.
