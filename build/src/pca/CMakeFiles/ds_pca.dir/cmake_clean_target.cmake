file(REMOVE_RECURSE
  "libds_pca.a"
)
