file(REMOVE_RECURSE
  "CMakeFiles/ds_common.dir/cost_model.cc.o"
  "CMakeFiles/ds_common.dir/cost_model.cc.o.d"
  "CMakeFiles/ds_common.dir/rng.cc.o"
  "CMakeFiles/ds_common.dir/rng.cc.o.d"
  "CMakeFiles/ds_common.dir/status.cc.o"
  "CMakeFiles/ds_common.dir/status.cc.o.d"
  "libds_common.a"
  "libds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
