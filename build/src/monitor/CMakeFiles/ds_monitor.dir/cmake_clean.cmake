file(REMOVE_RECURSE
  "CMakeFiles/ds_monitor.dir/continuous_tracking.cc.o"
  "CMakeFiles/ds_monitor.dir/continuous_tracking.cc.o.d"
  "libds_monitor.a"
  "libds_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
