# Empty compiler generated dependencies file for ds_monitor.
# This may be replaced when dependencies are built.
