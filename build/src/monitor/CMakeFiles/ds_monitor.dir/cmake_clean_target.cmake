file(REMOVE_RECURSE
  "libds_monitor.a"
)
