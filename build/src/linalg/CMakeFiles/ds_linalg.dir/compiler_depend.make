# Empty compiler generated dependencies file for ds_linalg.
# This may be replaced when dependencies are built.
