file(REMOVE_RECURSE
  "CMakeFiles/ds_linalg.dir/blas.cc.o"
  "CMakeFiles/ds_linalg.dir/blas.cc.o.d"
  "CMakeFiles/ds_linalg.dir/cholesky.cc.o"
  "CMakeFiles/ds_linalg.dir/cholesky.cc.o.d"
  "CMakeFiles/ds_linalg.dir/csr_matrix.cc.o"
  "CMakeFiles/ds_linalg.dir/csr_matrix.cc.o.d"
  "CMakeFiles/ds_linalg.dir/eigen_sym.cc.o"
  "CMakeFiles/ds_linalg.dir/eigen_sym.cc.o.d"
  "CMakeFiles/ds_linalg.dir/matrix.cc.o"
  "CMakeFiles/ds_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/ds_linalg.dir/pinv.cc.o"
  "CMakeFiles/ds_linalg.dir/pinv.cc.o.d"
  "CMakeFiles/ds_linalg.dir/qr.cc.o"
  "CMakeFiles/ds_linalg.dir/qr.cc.o.d"
  "CMakeFiles/ds_linalg.dir/randomized_svd.cc.o"
  "CMakeFiles/ds_linalg.dir/randomized_svd.cc.o.d"
  "CMakeFiles/ds_linalg.dir/row_basis.cc.o"
  "CMakeFiles/ds_linalg.dir/row_basis.cc.o.d"
  "CMakeFiles/ds_linalg.dir/spectral.cc.o"
  "CMakeFiles/ds_linalg.dir/spectral.cc.o.d"
  "CMakeFiles/ds_linalg.dir/svd.cc.o"
  "CMakeFiles/ds_linalg.dir/svd.cc.o.d"
  "libds_linalg.a"
  "libds_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
