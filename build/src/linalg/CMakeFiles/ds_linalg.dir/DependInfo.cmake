
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/blas.cc" "src/linalg/CMakeFiles/ds_linalg.dir/blas.cc.o" "gcc" "src/linalg/CMakeFiles/ds_linalg.dir/blas.cc.o.d"
  "/root/repo/src/linalg/cholesky.cc" "src/linalg/CMakeFiles/ds_linalg.dir/cholesky.cc.o" "gcc" "src/linalg/CMakeFiles/ds_linalg.dir/cholesky.cc.o.d"
  "/root/repo/src/linalg/csr_matrix.cc" "src/linalg/CMakeFiles/ds_linalg.dir/csr_matrix.cc.o" "gcc" "src/linalg/CMakeFiles/ds_linalg.dir/csr_matrix.cc.o.d"
  "/root/repo/src/linalg/eigen_sym.cc" "src/linalg/CMakeFiles/ds_linalg.dir/eigen_sym.cc.o" "gcc" "src/linalg/CMakeFiles/ds_linalg.dir/eigen_sym.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/linalg/CMakeFiles/ds_linalg.dir/matrix.cc.o" "gcc" "src/linalg/CMakeFiles/ds_linalg.dir/matrix.cc.o.d"
  "/root/repo/src/linalg/pinv.cc" "src/linalg/CMakeFiles/ds_linalg.dir/pinv.cc.o" "gcc" "src/linalg/CMakeFiles/ds_linalg.dir/pinv.cc.o.d"
  "/root/repo/src/linalg/qr.cc" "src/linalg/CMakeFiles/ds_linalg.dir/qr.cc.o" "gcc" "src/linalg/CMakeFiles/ds_linalg.dir/qr.cc.o.d"
  "/root/repo/src/linalg/randomized_svd.cc" "src/linalg/CMakeFiles/ds_linalg.dir/randomized_svd.cc.o" "gcc" "src/linalg/CMakeFiles/ds_linalg.dir/randomized_svd.cc.o.d"
  "/root/repo/src/linalg/row_basis.cc" "src/linalg/CMakeFiles/ds_linalg.dir/row_basis.cc.o" "gcc" "src/linalg/CMakeFiles/ds_linalg.dir/row_basis.cc.o.d"
  "/root/repo/src/linalg/spectral.cc" "src/linalg/CMakeFiles/ds_linalg.dir/spectral.cc.o" "gcc" "src/linalg/CMakeFiles/ds_linalg.dir/spectral.cc.o.d"
  "/root/repo/src/linalg/svd.cc" "src/linalg/CMakeFiles/ds_linalg.dir/svd.cc.o" "gcc" "src/linalg/CMakeFiles/ds_linalg.dir/svd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
