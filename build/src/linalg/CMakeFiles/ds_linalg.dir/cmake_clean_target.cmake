file(REMOVE_RECURSE
  "libds_linalg.a"
)
