file(REMOVE_RECURSE
  "CMakeFiles/ds_query.dir/covariance_query.cc.o"
  "CMakeFiles/ds_query.dir/covariance_query.cc.o.d"
  "CMakeFiles/ds_query.dir/distributed_ridge.cc.o"
  "CMakeFiles/ds_query.dir/distributed_ridge.cc.o.d"
  "libds_query.a"
  "libds_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
