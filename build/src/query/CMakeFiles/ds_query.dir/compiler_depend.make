# Empty compiler generated dependencies file for ds_query.
# This may be replaced when dependencies are built.
