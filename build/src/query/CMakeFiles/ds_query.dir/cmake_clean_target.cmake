file(REMOVE_RECURSE
  "libds_query.a"
)
