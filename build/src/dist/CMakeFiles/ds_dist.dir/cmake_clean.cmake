file(REMOVE_RECURSE
  "CMakeFiles/ds_dist.dir/adaptive_sketch_protocol.cc.o"
  "CMakeFiles/ds_dist.dir/adaptive_sketch_protocol.cc.o.d"
  "CMakeFiles/ds_dist.dir/additive_cluster.cc.o"
  "CMakeFiles/ds_dist.dir/additive_cluster.cc.o.d"
  "CMakeFiles/ds_dist.dir/cluster.cc.o"
  "CMakeFiles/ds_dist.dir/cluster.cc.o.d"
  "CMakeFiles/ds_dist.dir/comm_log.cc.o"
  "CMakeFiles/ds_dist.dir/comm_log.cc.o.d"
  "CMakeFiles/ds_dist.dir/exact_gram_protocol.cc.o"
  "CMakeFiles/ds_dist.dir/exact_gram_protocol.cc.o.d"
  "CMakeFiles/ds_dist.dir/fd_merge_protocol.cc.o"
  "CMakeFiles/ds_dist.dir/fd_merge_protocol.cc.o.d"
  "CMakeFiles/ds_dist.dir/low_rank_exact_protocol.cc.o"
  "CMakeFiles/ds_dist.dir/low_rank_exact_protocol.cc.o.d"
  "CMakeFiles/ds_dist.dir/protocol_planner.cc.o"
  "CMakeFiles/ds_dist.dir/protocol_planner.cc.o.d"
  "CMakeFiles/ds_dist.dir/row_sampling_protocol.cc.o"
  "CMakeFiles/ds_dist.dir/row_sampling_protocol.cc.o.d"
  "CMakeFiles/ds_dist.dir/svs_protocol.cc.o"
  "CMakeFiles/ds_dist.dir/svs_protocol.cc.o.d"
  "libds_dist.a"
  "libds_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
