# Empty compiler generated dependencies file for ds_dist.
# This may be replaced when dependencies are built.
