file(REMOVE_RECURSE
  "libds_dist.a"
)
