
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/adaptive_sketch_protocol.cc" "src/dist/CMakeFiles/ds_dist.dir/adaptive_sketch_protocol.cc.o" "gcc" "src/dist/CMakeFiles/ds_dist.dir/adaptive_sketch_protocol.cc.o.d"
  "/root/repo/src/dist/additive_cluster.cc" "src/dist/CMakeFiles/ds_dist.dir/additive_cluster.cc.o" "gcc" "src/dist/CMakeFiles/ds_dist.dir/additive_cluster.cc.o.d"
  "/root/repo/src/dist/cluster.cc" "src/dist/CMakeFiles/ds_dist.dir/cluster.cc.o" "gcc" "src/dist/CMakeFiles/ds_dist.dir/cluster.cc.o.d"
  "/root/repo/src/dist/comm_log.cc" "src/dist/CMakeFiles/ds_dist.dir/comm_log.cc.o" "gcc" "src/dist/CMakeFiles/ds_dist.dir/comm_log.cc.o.d"
  "/root/repo/src/dist/exact_gram_protocol.cc" "src/dist/CMakeFiles/ds_dist.dir/exact_gram_protocol.cc.o" "gcc" "src/dist/CMakeFiles/ds_dist.dir/exact_gram_protocol.cc.o.d"
  "/root/repo/src/dist/fd_merge_protocol.cc" "src/dist/CMakeFiles/ds_dist.dir/fd_merge_protocol.cc.o" "gcc" "src/dist/CMakeFiles/ds_dist.dir/fd_merge_protocol.cc.o.d"
  "/root/repo/src/dist/low_rank_exact_protocol.cc" "src/dist/CMakeFiles/ds_dist.dir/low_rank_exact_protocol.cc.o" "gcc" "src/dist/CMakeFiles/ds_dist.dir/low_rank_exact_protocol.cc.o.d"
  "/root/repo/src/dist/protocol_planner.cc" "src/dist/CMakeFiles/ds_dist.dir/protocol_planner.cc.o" "gcc" "src/dist/CMakeFiles/ds_dist.dir/protocol_planner.cc.o.d"
  "/root/repo/src/dist/row_sampling_protocol.cc" "src/dist/CMakeFiles/ds_dist.dir/row_sampling_protocol.cc.o" "gcc" "src/dist/CMakeFiles/ds_dist.dir/row_sampling_protocol.cc.o.d"
  "/root/repo/src/dist/svs_protocol.cc" "src/dist/CMakeFiles/ds_dist.dir/svs_protocol.cc.o" "gcc" "src/dist/CMakeFiles/ds_dist.dir/svs_protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sketch/CMakeFiles/ds_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ds_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
