# Empty dependencies file for ds_io.
# This may be replaced when dependencies are built.
