file(REMOVE_RECURSE
  "libds_io.a"
)
