file(REMOVE_RECURSE
  "CMakeFiles/ds_io.dir/matrix_io.cc.o"
  "CMakeFiles/ds_io.dir/matrix_io.cc.o.d"
  "libds_io.a"
  "libds_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
