file(REMOVE_RECURSE
  "CMakeFiles/ds_sketch.dir/adaptive_sketch.cc.o"
  "CMakeFiles/ds_sketch.dir/adaptive_sketch.cc.o.d"
  "CMakeFiles/ds_sketch.dir/countsketch.cc.o"
  "CMakeFiles/ds_sketch.dir/countsketch.cc.o.d"
  "CMakeFiles/ds_sketch.dir/decomp.cc.o"
  "CMakeFiles/ds_sketch.dir/decomp.cc.o.d"
  "CMakeFiles/ds_sketch.dir/error_metrics.cc.o"
  "CMakeFiles/ds_sketch.dir/error_metrics.cc.o.d"
  "CMakeFiles/ds_sketch.dir/fast_frequent_directions.cc.o"
  "CMakeFiles/ds_sketch.dir/fast_frequent_directions.cc.o.d"
  "CMakeFiles/ds_sketch.dir/frequent_directions.cc.o"
  "CMakeFiles/ds_sketch.dir/frequent_directions.cc.o.d"
  "CMakeFiles/ds_sketch.dir/quantizer.cc.o"
  "CMakeFiles/ds_sketch.dir/quantizer.cc.o.d"
  "CMakeFiles/ds_sketch.dir/row_sampling.cc.o"
  "CMakeFiles/ds_sketch.dir/row_sampling.cc.o.d"
  "CMakeFiles/ds_sketch.dir/sampling_function.cc.o"
  "CMakeFiles/ds_sketch.dir/sampling_function.cc.o.d"
  "CMakeFiles/ds_sketch.dir/sliding_window.cc.o"
  "CMakeFiles/ds_sketch.dir/sliding_window.cc.o.d"
  "CMakeFiles/ds_sketch.dir/svs.cc.o"
  "CMakeFiles/ds_sketch.dir/svs.cc.o.d"
  "libds_sketch.a"
  "libds_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
