# Empty compiler generated dependencies file for ds_sketch.
# This may be replaced when dependencies are built.
