
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/adaptive_sketch.cc" "src/sketch/CMakeFiles/ds_sketch.dir/adaptive_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/ds_sketch.dir/adaptive_sketch.cc.o.d"
  "/root/repo/src/sketch/countsketch.cc" "src/sketch/CMakeFiles/ds_sketch.dir/countsketch.cc.o" "gcc" "src/sketch/CMakeFiles/ds_sketch.dir/countsketch.cc.o.d"
  "/root/repo/src/sketch/decomp.cc" "src/sketch/CMakeFiles/ds_sketch.dir/decomp.cc.o" "gcc" "src/sketch/CMakeFiles/ds_sketch.dir/decomp.cc.o.d"
  "/root/repo/src/sketch/error_metrics.cc" "src/sketch/CMakeFiles/ds_sketch.dir/error_metrics.cc.o" "gcc" "src/sketch/CMakeFiles/ds_sketch.dir/error_metrics.cc.o.d"
  "/root/repo/src/sketch/fast_frequent_directions.cc" "src/sketch/CMakeFiles/ds_sketch.dir/fast_frequent_directions.cc.o" "gcc" "src/sketch/CMakeFiles/ds_sketch.dir/fast_frequent_directions.cc.o.d"
  "/root/repo/src/sketch/frequent_directions.cc" "src/sketch/CMakeFiles/ds_sketch.dir/frequent_directions.cc.o" "gcc" "src/sketch/CMakeFiles/ds_sketch.dir/frequent_directions.cc.o.d"
  "/root/repo/src/sketch/quantizer.cc" "src/sketch/CMakeFiles/ds_sketch.dir/quantizer.cc.o" "gcc" "src/sketch/CMakeFiles/ds_sketch.dir/quantizer.cc.o.d"
  "/root/repo/src/sketch/row_sampling.cc" "src/sketch/CMakeFiles/ds_sketch.dir/row_sampling.cc.o" "gcc" "src/sketch/CMakeFiles/ds_sketch.dir/row_sampling.cc.o.d"
  "/root/repo/src/sketch/sampling_function.cc" "src/sketch/CMakeFiles/ds_sketch.dir/sampling_function.cc.o" "gcc" "src/sketch/CMakeFiles/ds_sketch.dir/sampling_function.cc.o.d"
  "/root/repo/src/sketch/sliding_window.cc" "src/sketch/CMakeFiles/ds_sketch.dir/sliding_window.cc.o" "gcc" "src/sketch/CMakeFiles/ds_sketch.dir/sliding_window.cc.o.d"
  "/root/repo/src/sketch/svs.cc" "src/sketch/CMakeFiles/ds_sketch.dir/svs.cc.o" "gcc" "src/sketch/CMakeFiles/ds_sketch.dir/svs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/ds_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
