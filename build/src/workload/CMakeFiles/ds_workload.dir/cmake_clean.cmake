file(REMOVE_RECURSE
  "CMakeFiles/ds_workload.dir/generators.cc.o"
  "CMakeFiles/ds_workload.dir/generators.cc.o.d"
  "CMakeFiles/ds_workload.dir/partition.cc.o"
  "CMakeFiles/ds_workload.dir/partition.cc.o.d"
  "libds_workload.a"
  "libds_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
