file(REMOVE_RECURSE
  "CMakeFiles/distributed_ridge_test.dir/query/distributed_ridge_test.cc.o"
  "CMakeFiles/distributed_ridge_test.dir/query/distributed_ridge_test.cc.o.d"
  "distributed_ridge_test"
  "distributed_ridge_test.pdb"
  "distributed_ridge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_ridge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
