# Empty dependencies file for distributed_ridge_test.
# This may be replaced when dependencies are built.
