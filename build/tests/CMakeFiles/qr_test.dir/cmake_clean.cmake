file(REMOVE_RECURSE
  "CMakeFiles/qr_test.dir/linalg/qr_test.cc.o"
  "CMakeFiles/qr_test.dir/linalg/qr_test.cc.o.d"
  "qr_test"
  "qr_test.pdb"
  "qr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
