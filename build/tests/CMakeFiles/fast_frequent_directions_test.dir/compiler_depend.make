# Empty compiler generated dependencies file for fast_frequent_directions_test.
# This may be replaced when dependencies are built.
