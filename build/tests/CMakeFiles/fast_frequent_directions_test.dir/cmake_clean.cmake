file(REMOVE_RECURSE
  "CMakeFiles/fast_frequent_directions_test.dir/sketch/fast_frequent_directions_test.cc.o"
  "CMakeFiles/fast_frequent_directions_test.dir/sketch/fast_frequent_directions_test.cc.o.d"
  "fast_frequent_directions_test"
  "fast_frequent_directions_test.pdb"
  "fast_frequent_directions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_frequent_directions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
