# Empty dependencies file for streaming_semantics_test.
# This may be replaced when dependencies are built.
