file(REMOVE_RECURSE
  "CMakeFiles/streaming_semantics_test.dir/dist/streaming_semantics_test.cc.o"
  "CMakeFiles/streaming_semantics_test.dir/dist/streaming_semantics_test.cc.o.d"
  "streaming_semantics_test"
  "streaming_semantics_test.pdb"
  "streaming_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
