# Empty dependencies file for pca_quality_test.
# This may be replaced when dependencies are built.
