file(REMOVE_RECURSE
  "CMakeFiles/pca_quality_test.dir/pca/pca_quality_test.cc.o"
  "CMakeFiles/pca_quality_test.dir/pca/pca_quality_test.cc.o.d"
  "pca_quality_test"
  "pca_quality_test.pdb"
  "pca_quality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pca_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
