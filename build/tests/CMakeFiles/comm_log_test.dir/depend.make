# Empty dependencies file for comm_log_test.
# This may be replaced when dependencies are built.
