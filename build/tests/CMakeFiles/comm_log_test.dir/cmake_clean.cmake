file(REMOVE_RECURSE
  "CMakeFiles/comm_log_test.dir/dist/comm_log_test.cc.o"
  "CMakeFiles/comm_log_test.dir/dist/comm_log_test.cc.o.d"
  "comm_log_test"
  "comm_log_test.pdb"
  "comm_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
