file(REMOVE_RECURSE
  "CMakeFiles/countsketch_test.dir/sketch/countsketch_test.cc.o"
  "CMakeFiles/countsketch_test.dir/sketch/countsketch_test.cc.o.d"
  "countsketch_test"
  "countsketch_test.pdb"
  "countsketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/countsketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
