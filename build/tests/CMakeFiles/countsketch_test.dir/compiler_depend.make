# Empty compiler generated dependencies file for countsketch_test.
# This may be replaced when dependencies are built.
