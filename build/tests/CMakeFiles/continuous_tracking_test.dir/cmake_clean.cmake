file(REMOVE_RECURSE
  "CMakeFiles/continuous_tracking_test.dir/monitor/continuous_tracking_test.cc.o"
  "CMakeFiles/continuous_tracking_test.dir/monitor/continuous_tracking_test.cc.o.d"
  "continuous_tracking_test"
  "continuous_tracking_test.pdb"
  "continuous_tracking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_tracking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
