# Empty dependencies file for continuous_tracking_test.
# This may be replaced when dependencies are built.
