# Empty compiler generated dependencies file for low_rank_exact_test.
# This may be replaced when dependencies are built.
