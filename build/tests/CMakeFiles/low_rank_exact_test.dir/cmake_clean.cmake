file(REMOVE_RECURSE
  "CMakeFiles/low_rank_exact_test.dir/dist/low_rank_exact_test.cc.o"
  "CMakeFiles/low_rank_exact_test.dir/dist/low_rank_exact_test.cc.o.d"
  "low_rank_exact_test"
  "low_rank_exact_test.pdb"
  "low_rank_exact_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_rank_exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
