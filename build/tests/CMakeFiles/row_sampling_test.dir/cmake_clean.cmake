file(REMOVE_RECURSE
  "CMakeFiles/row_sampling_test.dir/sketch/row_sampling_test.cc.o"
  "CMakeFiles/row_sampling_test.dir/sketch/row_sampling_test.cc.o.d"
  "row_sampling_test"
  "row_sampling_test.pdb"
  "row_sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/row_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
