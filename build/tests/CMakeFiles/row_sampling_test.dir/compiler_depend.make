# Empty compiler generated dependencies file for row_sampling_test.
# This may be replaced when dependencies are built.
