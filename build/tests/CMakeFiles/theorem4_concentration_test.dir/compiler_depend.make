# Empty compiler generated dependencies file for theorem4_concentration_test.
# This may be replaced when dependencies are built.
