file(REMOVE_RECURSE
  "CMakeFiles/theorem4_concentration_test.dir/sketch/theorem4_concentration_test.cc.o"
  "CMakeFiles/theorem4_concentration_test.dir/sketch/theorem4_concentration_test.cc.o.d"
  "theorem4_concentration_test"
  "theorem4_concentration_test.pdb"
  "theorem4_concentration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem4_concentration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
