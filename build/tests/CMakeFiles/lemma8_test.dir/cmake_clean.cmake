file(REMOVE_RECURSE
  "CMakeFiles/lemma8_test.dir/pca/lemma8_test.cc.o"
  "CMakeFiles/lemma8_test.dir/pca/lemma8_test.cc.o.d"
  "lemma8_test"
  "lemma8_test.pdb"
  "lemma8_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma8_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
