# Empty dependencies file for lemma8_test.
# This may be replaced when dependencies are built.
