file(REMOVE_RECURSE
  "CMakeFiles/numerical_stability_test.dir/linalg/numerical_stability_test.cc.o"
  "CMakeFiles/numerical_stability_test.dir/linalg/numerical_stability_test.cc.o.d"
  "numerical_stability_test"
  "numerical_stability_test.pdb"
  "numerical_stability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numerical_stability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
