# Empty dependencies file for numerical_stability_test.
# This may be replaced when dependencies are built.
