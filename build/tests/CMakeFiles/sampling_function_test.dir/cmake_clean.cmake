file(REMOVE_RECURSE
  "CMakeFiles/sampling_function_test.dir/sketch/sampling_function_test.cc.o"
  "CMakeFiles/sampling_function_test.dir/sketch/sampling_function_test.cc.o.d"
  "sampling_function_test"
  "sampling_function_test.pdb"
  "sampling_function_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
