# Empty compiler generated dependencies file for row_basis_test.
# This may be replaced when dependencies are built.
