file(REMOVE_RECURSE
  "CMakeFiles/row_basis_test.dir/linalg/row_basis_test.cc.o"
  "CMakeFiles/row_basis_test.dir/linalg/row_basis_test.cc.o.d"
  "row_basis_test"
  "row_basis_test.pdb"
  "row_basis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/row_basis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
