file(REMOVE_RECURSE
  "CMakeFiles/covariance_query_test.dir/query/covariance_query_test.cc.o"
  "CMakeFiles/covariance_query_test.dir/query/covariance_query_test.cc.o.d"
  "covariance_query_test"
  "covariance_query_test.pdb"
  "covariance_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covariance_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
