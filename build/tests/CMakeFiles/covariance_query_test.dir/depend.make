# Empty dependencies file for covariance_query_test.
# This may be replaced when dependencies are built.
