file(REMOVE_RECURSE
  "CMakeFiles/svs_test.dir/sketch/svs_test.cc.o"
  "CMakeFiles/svs_test.dir/sketch/svs_test.cc.o.d"
  "svs_test"
  "svs_test.pdb"
  "svs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
