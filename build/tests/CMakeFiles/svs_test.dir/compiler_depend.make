# Empty compiler generated dependencies file for svs_test.
# This may be replaced when dependencies are built.
