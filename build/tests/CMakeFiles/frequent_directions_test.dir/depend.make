# Empty dependencies file for frequent_directions_test.
# This may be replaced when dependencies are built.
