file(REMOVE_RECURSE
  "CMakeFiles/frequent_directions_test.dir/sketch/frequent_directions_test.cc.o"
  "CMakeFiles/frequent_directions_test.dir/sketch/frequent_directions_test.cc.o.d"
  "frequent_directions_test"
  "frequent_directions_test.pdb"
  "frequent_directions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequent_directions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
