# Empty compiler generated dependencies file for randomized_svd_test.
# This may be replaced when dependencies are built.
