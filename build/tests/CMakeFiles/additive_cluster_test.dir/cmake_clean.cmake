file(REMOVE_RECURSE
  "CMakeFiles/additive_cluster_test.dir/dist/additive_cluster_test.cc.o"
  "CMakeFiles/additive_cluster_test.dir/dist/additive_cluster_test.cc.o.d"
  "additive_cluster_test"
  "additive_cluster_test.pdb"
  "additive_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/additive_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
