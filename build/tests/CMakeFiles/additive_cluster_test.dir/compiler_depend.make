# Empty compiler generated dependencies file for additive_cluster_test.
# This may be replaced when dependencies are built.
