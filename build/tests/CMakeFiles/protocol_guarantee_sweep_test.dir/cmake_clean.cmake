file(REMOVE_RECURSE
  "CMakeFiles/protocol_guarantee_sweep_test.dir/dist/protocol_guarantee_sweep_test.cc.o"
  "CMakeFiles/protocol_guarantee_sweep_test.dir/dist/protocol_guarantee_sweep_test.cc.o.d"
  "protocol_guarantee_sweep_test"
  "protocol_guarantee_sweep_test.pdb"
  "protocol_guarantee_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_guarantee_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
