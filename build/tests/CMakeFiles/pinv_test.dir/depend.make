# Empty dependencies file for pinv_test.
# This may be replaced when dependencies are built.
