file(REMOVE_RECURSE
  "CMakeFiles/pinv_test.dir/linalg/pinv_test.cc.o"
  "CMakeFiles/pinv_test.dir/linalg/pinv_test.cc.o.d"
  "pinv_test"
  "pinv_test.pdb"
  "pinv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
