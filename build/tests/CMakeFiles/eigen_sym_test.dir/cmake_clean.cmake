file(REMOVE_RECURSE
  "CMakeFiles/eigen_sym_test.dir/linalg/eigen_sym_test.cc.o"
  "CMakeFiles/eigen_sym_test.dir/linalg/eigen_sym_test.cc.o.d"
  "eigen_sym_test"
  "eigen_sym_test.pdb"
  "eigen_sym_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eigen_sym_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
