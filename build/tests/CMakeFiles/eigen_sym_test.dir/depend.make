# Empty dependencies file for eigen_sym_test.
# This may be replaced when dependencies are built.
