# Empty dependencies file for adaptive_sketch_test.
# This may be replaced when dependencies are built.
