file(REMOVE_RECURSE
  "CMakeFiles/adaptive_sketch_test.dir/sketch/adaptive_sketch_test.cc.o"
  "CMakeFiles/adaptive_sketch_test.dir/sketch/adaptive_sketch_test.cc.o.d"
  "adaptive_sketch_test"
  "adaptive_sketch_test.pdb"
  "adaptive_sketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
