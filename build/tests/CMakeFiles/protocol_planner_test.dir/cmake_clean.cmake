file(REMOVE_RECURSE
  "CMakeFiles/protocol_planner_test.dir/dist/protocol_planner_test.cc.o"
  "CMakeFiles/protocol_planner_test.dir/dist/protocol_planner_test.cc.o.d"
  "protocol_planner_test"
  "protocol_planner_test.pdb"
  "protocol_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
