file(REMOVE_RECURSE
  "CMakeFiles/pca_protocols_test.dir/pca/pca_protocols_test.cc.o"
  "CMakeFiles/pca_protocols_test.dir/pca/pca_protocols_test.cc.o.d"
  "pca_protocols_test"
  "pca_protocols_test.pdb"
  "pca_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pca_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
