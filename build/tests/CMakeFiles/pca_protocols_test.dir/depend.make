# Empty dependencies file for pca_protocols_test.
# This may be replaced when dependencies are built.
