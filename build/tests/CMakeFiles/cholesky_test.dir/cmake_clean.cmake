file(REMOVE_RECURSE
  "CMakeFiles/cholesky_test.dir/linalg/cholesky_test.cc.o"
  "CMakeFiles/cholesky_test.dir/linalg/cholesky_test.cc.o.d"
  "cholesky_test"
  "cholesky_test.pdb"
  "cholesky_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cholesky_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
