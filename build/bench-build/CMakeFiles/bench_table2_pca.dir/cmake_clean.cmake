file(REMOVE_RECURSE
  "../bench/bench_table2_pca"
  "../bench/bench_table2_pca.pdb"
  "CMakeFiles/bench_table2_pca.dir/bench_table2_pca.cc.o"
  "CMakeFiles/bench_table2_pca.dir/bench_table2_pca.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
