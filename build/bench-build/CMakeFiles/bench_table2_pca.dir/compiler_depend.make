# Empty compiler generated dependencies file for bench_table2_pca.
# This may be replaced when dependencies are built.
