file(REMOVE_RECURSE
  "../bench/bench_ext_arbitrary_partition"
  "../bench/bench_ext_arbitrary_partition.pdb"
  "CMakeFiles/bench_ext_arbitrary_partition.dir/bench_ext_arbitrary_partition.cc.o"
  "CMakeFiles/bench_ext_arbitrary_partition.dir/bench_ext_arbitrary_partition.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_arbitrary_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
