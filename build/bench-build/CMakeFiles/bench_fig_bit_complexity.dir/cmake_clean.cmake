file(REMOVE_RECURSE
  "../bench/bench_fig_bit_complexity"
  "../bench/bench_fig_bit_complexity.pdb"
  "CMakeFiles/bench_fig_bit_complexity.dir/bench_fig_bit_complexity.cc.o"
  "CMakeFiles/bench_fig_bit_complexity.dir/bench_fig_bit_complexity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_bit_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
