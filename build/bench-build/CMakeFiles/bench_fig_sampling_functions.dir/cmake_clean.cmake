file(REMOVE_RECURSE
  "../bench/bench_fig_sampling_functions"
  "../bench/bench_fig_sampling_functions.pdb"
  "CMakeFiles/bench_fig_sampling_functions.dir/bench_fig_sampling_functions.cc.o"
  "CMakeFiles/bench_fig_sampling_functions.dir/bench_fig_sampling_functions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_sampling_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
