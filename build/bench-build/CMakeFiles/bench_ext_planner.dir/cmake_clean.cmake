file(REMOVE_RECURSE
  "../bench/bench_ext_planner"
  "../bench/bench_ext_planner.pdb"
  "CMakeFiles/bench_ext_planner.dir/bench_ext_planner.cc.o"
  "CMakeFiles/bench_ext_planner.dir/bench_ext_planner.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
