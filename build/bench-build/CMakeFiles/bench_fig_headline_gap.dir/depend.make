# Empty dependencies file for bench_fig_headline_gap.
# This may be replaced when dependencies are built.
