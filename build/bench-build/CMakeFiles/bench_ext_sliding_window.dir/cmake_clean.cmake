file(REMOVE_RECURSE
  "../bench/bench_ext_sliding_window"
  "../bench/bench_ext_sliding_window.pdb"
  "CMakeFiles/bench_ext_sliding_window.dir/bench_ext_sliding_window.cc.o"
  "CMakeFiles/bench_ext_sliding_window.dir/bench_ext_sliding_window.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sliding_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
