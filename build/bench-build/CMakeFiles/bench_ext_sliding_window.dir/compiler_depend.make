# Empty compiler generated dependencies file for bench_ext_sliding_window.
# This may be replaced when dependencies are built.
