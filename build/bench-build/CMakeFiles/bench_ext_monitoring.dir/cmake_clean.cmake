file(REMOVE_RECURSE
  "../bench/bench_ext_monitoring"
  "../bench/bench_ext_monitoring.pdb"
  "CMakeFiles/bench_ext_monitoring.dir/bench_ext_monitoring.cc.o"
  "CMakeFiles/bench_ext_monitoring.dir/bench_ext_monitoring.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
