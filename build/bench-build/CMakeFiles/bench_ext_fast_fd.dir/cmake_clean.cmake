file(REMOVE_RECURSE
  "../bench/bench_ext_fast_fd"
  "../bench/bench_ext_fast_fd.pdb"
  "CMakeFiles/bench_ext_fast_fd.dir/bench_ext_fast_fd.cc.o"
  "CMakeFiles/bench_ext_fast_fd.dir/bench_ext_fast_fd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fast_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
