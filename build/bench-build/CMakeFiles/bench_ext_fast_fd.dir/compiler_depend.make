# Empty compiler generated dependencies file for bench_ext_fast_fd.
# This may be replaced when dependencies are built.
