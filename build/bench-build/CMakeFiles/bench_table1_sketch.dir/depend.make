# Empty dependencies file for bench_table1_sketch.
# This may be replaced when dependencies are built.
