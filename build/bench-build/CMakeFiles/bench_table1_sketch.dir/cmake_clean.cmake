file(REMOVE_RECURSE
  "../bench/bench_table1_sketch"
  "../bench/bench_table1_sketch.pdb"
  "CMakeFiles/bench_table1_sketch.dir/bench_table1_sketch.cc.o"
  "CMakeFiles/bench_table1_sketch.dir/bench_table1_sketch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
