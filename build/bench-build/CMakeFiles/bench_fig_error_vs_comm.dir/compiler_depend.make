# Empty compiler generated dependencies file for bench_fig_error_vs_comm.
# This may be replaced when dependencies are built.
