
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig_error_vs_comm.cc" "bench-build/CMakeFiles/bench_fig_error_vs_comm.dir/bench_fig_error_vs_comm.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig_error_vs_comm.dir/bench_fig_error_vs_comm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pca/CMakeFiles/ds_pca.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ds_query.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ds_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/ds_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/ds_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/ds_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ds_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
