# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_pca_demo "/root/repo/build/examples/distributed_pca_demo")
set_tests_properties(example_distributed_pca_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_anomaly_detection "/root/repo/build/examples/anomaly_detection")
set_tests_properties(example_anomaly_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_telemetry "/root/repo/build/examples/streaming_telemetry")
set_tests_properties(example_streaming_telemetry PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lower_bound_gap "/root/repo/build/examples/lower_bound_gap")
set_tests_properties(example_lower_bound_gap PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sliding_window_monitor "/root/repo/build/examples/sliding_window_monitor")
set_tests_properties(example_sliding_window_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ridge_regression "/root/repo/build/examples/ridge_regression")
set_tests_properties(example_ridge_regression PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sketch_tool "/root/repo/build/examples/sketch_tool" "info")
set_tests_properties(example_sketch_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
