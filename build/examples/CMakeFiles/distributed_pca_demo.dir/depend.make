# Empty dependencies file for distributed_pca_demo.
# This may be replaced when dependencies are built.
