file(REMOVE_RECURSE
  "CMakeFiles/distributed_pca_demo.dir/distributed_pca_demo.cpp.o"
  "CMakeFiles/distributed_pca_demo.dir/distributed_pca_demo.cpp.o.d"
  "distributed_pca_demo"
  "distributed_pca_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_pca_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
