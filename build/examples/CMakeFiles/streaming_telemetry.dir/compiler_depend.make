# Empty compiler generated dependencies file for streaming_telemetry.
# This may be replaced when dependencies are built.
