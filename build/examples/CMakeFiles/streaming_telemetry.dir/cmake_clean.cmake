file(REMOVE_RECURSE
  "CMakeFiles/streaming_telemetry.dir/streaming_telemetry.cpp.o"
  "CMakeFiles/streaming_telemetry.dir/streaming_telemetry.cpp.o.d"
  "streaming_telemetry"
  "streaming_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
