file(REMOVE_RECURSE
  "CMakeFiles/lower_bound_gap.dir/lower_bound_gap.cpp.o"
  "CMakeFiles/lower_bound_gap.dir/lower_bound_gap.cpp.o.d"
  "lower_bound_gap"
  "lower_bound_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_bound_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
