file(REMOVE_RECURSE
  "CMakeFiles/sketch_tool.dir/sketch_tool.cpp.o"
  "CMakeFiles/sketch_tool.dir/sketch_tool.cpp.o.d"
  "sketch_tool"
  "sketch_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
