file(REMOVE_RECURSE
  "CMakeFiles/ridge_regression.dir/ridge_regression.cpp.o"
  "CMakeFiles/ridge_regression.dir/ridge_regression.cpp.o.d"
  "ridge_regression"
  "ridge_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ridge_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
