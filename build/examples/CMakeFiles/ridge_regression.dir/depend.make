# Empty dependencies file for ridge_regression.
# This may be replaced when dependencies are built.
