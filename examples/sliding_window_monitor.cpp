// Sliding-window covariance monitoring (the Wei et al. [34] setting,
// cited in the paper's §1.5): a service tracks the covariance structure
// of only the *recent* traffic, so that when the workload shifts, stale
// history does not pollute the estimate.
//
// We stream three regimes (normal -> rotated subspace -> back) through a
// SlidingWindowSketch and a whole-stream FD, and show the window sketch
// tracking each regime while the whole-stream sketch averages them.

#include <cstdio>

#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "sketch/frequent_directions.h"
#include "sketch/sliding_window.h"
#include "workload/generators.h"

using namespace distsketch;

int main() {
  const size_t d = 24;
  const size_t window = 512;
  const double eps = 0.2;

  const Matrix regime_a = GenerateLowRankPlusNoise(
      {.rows = 1500, .cols = d, .rank = 3, .top_singular_value = 20.0,
       .noise_stddev = 0.2, .seed = 1});
  const Matrix regime_b = GenerateLowRankPlusNoise(
      {.rows = 1500, .cols = d, .rank = 3, .top_singular_value = 20.0,
       .noise_stddev = 0.2, .seed = 2});
  const Matrix stream =
      ConcatRows(ConcatRows(regime_a, regime_b), regime_a);

  auto sw = SlidingWindowSketch::Create(d, window, eps);
  if (!sw.ok()) return 1;
  auto whole = FrequentDirections::FromEps(d, eps / 2.0);
  if (!whole.ok()) return 1;

  std::printf(
      "stream of %zu rows (regimes switch at 1500 and 3000), window = "
      "%zu, eps = %.2f\n\n",
      stream.rows(), window, eps);
  std::printf("  %-8s %-22s %-22s\n", "row", "window sketch err/mass",
              "whole-stream err/mass");
  for (size_t i = 0; i < stream.rows(); ++i) {
    if (!sw->Append(stream.Row(i)).ok()) return 1;
    whole->Append(stream.Row(i));
    if ((i + 1) % 750 == 0 && i + 1 >= window) {
      const Matrix recent = stream.RowRange(i + 1 - window, i + 1);
      const double mass = SquaredFrobeniusNorm(recent);
      auto q = sw->Query();
      if (!q.ok()) return 1;
      const double err_window = CovarianceError(recent, *q) / mass;
      const double err_whole =
          CovarianceError(recent, whole->buffer()) / mass;
      std::printf("  %-8zu %-22.4f %-22.4f\n", i + 1, err_window,
                  err_whole);
    }
  }
  std::printf(
      "\n  blocks retained: %zu (space O(d/eps^2) independent of stream "
      "length)\n",
      sw->num_blocks());
  std::printf(
      "  Reading: after each regime switch the whole-stream sketch keeps "
      "paying for history it cannot forget, while the window sketch "
      "re-converges within one window.\n");
  return 0;
}
