// Streaming anomaly detection with a covariance sketch — one of the
// motivating applications cited in the paper's introduction ([20], [36]).
//
// A server observes a stream of telemetry vectors that normally live near
// a low-dimensional subspace. We maintain a Frequent Directions sketch
// online; the anomaly score of each incoming row is its residual energy
// outside the sketch's top-k subspace. Because the sketch is a covariance
// sketch (Definition 1), the residual computed against the sketch tracks
// the residual against the true (unknown) covariance.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/svd.h"
#include "sketch/frequent_directions.h"
#include "workload/generators.h"

using namespace distsketch;

namespace {

// Residual energy of `row` outside the column span of v (d-by-k).
double ResidualScore(std::span<const double> row, const Matrix& v) {
  double energy = SquaredNorm2(row);
  if (energy == 0.0) return 0.0;
  double captured = 0.0;
  for (size_t j = 0; j < v.cols(); ++j) {
    double dot = 0.0;
    for (size_t i = 0; i < row.size(); ++i) dot += row[i] * v(i, j);
    captured += dot * dot;
  }
  return (energy - captured) / energy;  // fraction of energy unexplained
}

}  // namespace

int main() {
  const size_t d = 32;
  const size_t k = 4;
  const size_t n = 4000;
  const double anomaly_rate = 0.01;

  // Normal traffic: rank-4 signal + small noise. Anomalies: random
  // directions at comparable magnitude.
  const Matrix signal_basis = RandomOrthonormal(d, 7);
  Rng rng(123);
  Matrix stream(0, d);
  std::vector<bool> truth(n, false);
  std::vector<double> row(d);
  for (size_t t = 0; t < n; ++t) {
    const bool is_anomaly = rng.NextBernoulli(anomaly_rate) && t > 500;
    truth[t] = is_anomaly;
    std::fill(row.begin(), row.end(), 0.0);
    if (is_anomaly) {
      for (size_t i = 0; i < d; ++i) row[i] = 3.0 * rng.NextGaussian();
    } else {
      for (size_t j = 0; j < k; ++j) {
        const double coeff = (10.0 - 2.0 * j) * rng.NextGaussian();
        for (size_t i = 0; i < d; ++i) row[i] += coeff * signal_basis(i, j);
      }
      for (size_t i = 0; i < d; ++i) row[i] += 0.2 * rng.NextGaussian();
    }
    stream.AppendRow(row);
  }

  // Online pass: score each row against the current sketch subspace,
  // refreshing the subspace every `refresh` rows (an SVD of the tiny
  // sketch, not the data).
  FrequentDirections fd(d, 2 * k + 8);
  const size_t warmup = 500;
  const size_t refresh = 100;
  Matrix subspace(d, 0);
  size_t true_positives = 0, false_positives = 0, anomalies = 0;
  const double threshold = 0.55;
  for (size_t t = 0; t < n; ++t) {
    if (t >= warmup && subspace.cols() == k) {
      const double score = ResidualScore(stream.Row(t), subspace);
      const bool flagged = score > threshold;
      if (truth[t]) {
        ++anomalies;
        if (flagged) ++true_positives;
      } else if (flagged) {
        ++false_positives;
      }
    }
    fd.Append(stream.Row(t));
    if (t % refresh == refresh - 1 || subspace.cols() != k) {
      auto svd = ComputeSvd(fd.Sketch());
      if (svd.ok()) subspace = svd->TopRightSingularVectors(k);
    }
  }

  std::printf(
      "streamed %zu rows (dim %zu), sketch of %zu rows "
      "(%.1fx smaller than the data)\n",
      n, d, fd.sketch_size(),
      static_cast<double>(n) / fd.sketch_size());
  std::printf("anomalies after warmup: %zu\n", anomalies);
  std::printf("detected: %zu (recall %.0f%%), false positives: %zu\n",
              true_positives,
              anomalies ? 100.0 * true_positives / anomalies : 0.0,
              false_positives);
  return 0;
}
