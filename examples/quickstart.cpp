// Quickstart: sketch a matrix with Frequent Directions, check the
// covariance error, then do the same across a simulated cluster with the
// paper's randomized adaptive protocol and compare communication.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "dist/adaptive_sketch_protocol.h"
#include "dist/fd_merge_protocol.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "sketch/frequent_directions.h"
#include "workload/generators.h"
#include "workload/partition.h"

using namespace distsketch;

int main() {
  // 1. Some data: 2000 x 32 with an effective rank of ~6.
  const Matrix a = GenerateLowRankPlusNoise({.rows = 2000,
                                             .cols = 32,
                                             .rank = 6,
                                             .decay = 0.7,
                                             .top_singular_value = 50.0,
                                             .noise_stddev = 0.3,
                                             .seed = 42});
  std::printf("input: %zux%zu, ||A||_F^2 = %.1f\n", a.rows(), a.cols(),
              SquaredFrobeniusNorm(a));

  // 2. Single-machine streaming sketch (Theorem 1): one pass, tiny space.
  const double eps = 0.25;
  const size_t k = 4;
  auto fd = FrequentDirections::FromEpsK(a.cols(), eps, k);
  if (!fd.ok()) {
    std::printf("error: %s\n", fd.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < a.rows(); ++i) fd->Append(a.Row(i));
  const Matrix b = fd->Sketch();
  std::printf(
      "\nFrequent Directions: %zu rows (%.1fx compression)\n"
      "  coverr           = %.4f\n"
      "  certified budget = %.4f  (eps*||A-[A]_k||_F^2/k)\n",
      b.rows(), static_cast<double>(a.rows()) / b.rows(),
      CovarianceError(a, b), SketchErrorBudget(a, eps, k));

  // 3. Distributed: 8 servers, the paper's Theorem 7 protocol vs the
  //    deterministic baseline. The error guarantee is the same shape; the
  //    words on the wire are not.
  auto cluster = Cluster::Create(
      PartitionRows(a, 8, PartitionScheme::kRoundRobin), eps);
  if (!cluster.ok()) return 1;

  FdMergeProtocol det({.eps = eps, .k = k});
  auto det_result = det.Run(*cluster);
  AdaptiveSketchProtocol rand_protocol({.eps = eps, .k = k, .seed = 7});
  auto rand_result = rand_protocol.Run(*cluster);
  if (!det_result.ok() || !rand_result.ok()) return 1;

  std::printf(
      "\ndistributed (s = 8):\n"
      "  deterministic FD-merge : %llu words, coverr %.4f\n"
      "  randomized adaptive    : %llu words, coverr %.4f\n",
      static_cast<unsigned long long>(det_result->comm.total_words),
      CovarianceError(a, det_result->sketch),
      static_cast<unsigned long long>(rand_result->comm.total_words),
      CovarianceError(a, rand_result->sketch));
  return 0;
}
