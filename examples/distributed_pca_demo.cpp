// Distributed PCA on clustered data (the paper's §4 / Theorem 9).
//
// A dataset of well-separated Gaussian clusters is spread row-wise across
// 12 servers. We recover approximate top-k principal components three
// ways — the O(skd/eps) deterministic baseline, the batch comparator
// standing in for Boutsidis et al. [5], and the paper's one-pass
// sketch-and-solve — and compare communication and the variance captured.

#include <cstdio>

#include "linalg/blas.h"
#include "pca/distributed_power_iteration.h"
#include "pca/fd_pca.h"
#include "pca/pca_quality.h"
#include "pca/sketch_and_solve.h"
#include "workload/generators.h"
#include "workload/partition.h"

using namespace distsketch;

namespace {

void Report(const char* name, const Matrix& a, const PcaResult& result) {
  const PcaQualityReport q = EvaluatePcaQuality(a, result.components);
  const double total = SquaredFrobeniusNorm(a);
  std::printf(
      "  %-24s words=%-9llu captured variance=%5.1f%%  "
      "proj_err/optimal=%.4f\n",
      name, static_cast<unsigned long long>(result.comm.total_words),
      100.0 * (1.0 - q.projection_error / total), q.ratio);
}

}  // namespace

int main() {
  const size_t k = 5;
  const double eps = 0.2;
  const size_t s = 12;

  const ClusteredData data = GenerateClusteredGaussian({.rows = 3000,
                                                        .cols = 48,
                                                        .num_clusters = 5,
                                                        .center_scale = 25.0,
                                                        .within_stddev = 1.0,
                                                        .seed = 2026});
  std::printf(
      "dataset: %zu points in %zu dims, 5 planted clusters, spread over "
      "%zu servers\n\n",
      data.data.rows(), data.data.cols(), s);

  auto cluster = Cluster::Create(
      PartitionRows(data.data, s, PartitionScheme::kRandom, 1), eps);
  if (!cluster.ok()) {
    std::printf("error: %s\n", cluster.status().ToString().c_str());
    return 1;
  }

  FdPcaProtocol baseline({.k = k, .eps = eps});
  auto base = baseline.Run(*cluster);
  if (!base.ok()) return 1;
  Report("FD-PCA (O(skd/eps))", data.data, *base);

  PowerIterationPcaOptions batch_options;
  batch_options.k = k;
  batch_options.eps = eps;
  DistributedPowerIterationPca batch(batch_options);
  auto batch_result = batch.Run(*cluster);
  if (!batch_result.ok()) return 1;
  Report("[5]-proxy batch PCA", data.data, *batch_result);

  SketchAndSolvePca ours({.k = k, .eps = eps, .seed = 99});
  auto ours_result = ours.Run(*cluster);
  if (!ours_result.ok()) return 1;
  Report("sketch-and-solve (Thm 9)", data.data, *ours_result);

  std::printf(
      "\nAll three reach (1+eps)-optimal projection error; the Theorem 9 "
      "pipeline gets there with one pass over each server's data and the "
      "fewest words.\n");
  return 0;
}
