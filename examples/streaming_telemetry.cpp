// Distributed streaming telemetry: the deployment story of the paper's
// abstract — s servers each observe a stream they can read only once with
// bounded memory; at query time the coordinator wants a covariance sketch
// of the union without shipping the raw data.
//
// We simulate 16 edge servers, each receiving a differently-skewed slice
// of a shared low-rank process, run the Theorem 7 adaptive protocol, and
// report what a dashboard would: per-server working space, words on the
// wire vs raw size, and the spectral summary the coordinator can serve.

#include <cstdio>

#include "dist/adaptive_sketch_protocol.h"
#include "linalg/blas.h"
#include "linalg/svd.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"
#include "workload/partition.h"

using namespace distsketch;

int main() {
  const size_t s = 16;
  const size_t d = 40;
  const double eps = 0.25;
  const size_t k = 4;

  // A shared global process, sliced unevenly (skewed partition): some
  // servers see most of the traffic, as in real fleets.
  const Matrix global = GenerateLowRankPlusNoise({.rows = 6400,
                                                  .cols = d,
                                                  .rank = 6,
                                                  .decay = 0.65,
                                                  .top_singular_value =
                                                      80.0,
                                                  .noise_stddev = 0.5,
                                                  .seed = 11});
  auto cluster = Cluster::Create(
      PartitionRows(global, s, PartitionScheme::kSkewed), eps);
  if (!cluster.ok()) {
    std::printf("error: %s\n", cluster.status().ToString().c_str());
    return 1;
  }

  std::printf("fleet: %zu servers, row dim %zu\n", s, d);
  std::printf("  server 0 holds %zu rows; server %zu holds %zu rows\n",
              cluster->server(0).num_rows(), s - 1,
              cluster->server(s - 1).num_rows());

  AdaptiveSketchProtocol protocol(
      {.eps = eps, .k = k, .recompress = true, .seed = 5});
  auto result = protocol.Run(*cluster);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  const uint64_t raw_words = global.rows() * d;
  const size_t fd_space = (k + static_cast<size_t>(k / eps)) * 2 * d;
  std::printf("\nprotocol: Theorem 7 adaptive sketch (+ recompress)\n");
  std::printf("  per-server working space : %zu doubles (one pass)\n",
              fd_space);
  std::printf("  rounds                   : %d\n", result->comm.num_rounds);
  std::printf("  words on the wire        : %llu (raw data: %llu, %.0fx)\n",
              static_cast<unsigned long long>(result->comm.total_words),
              static_cast<unsigned long long>(raw_words),
              static_cast<double>(raw_words) / result->comm.total_words);
  std::printf("  coordinator sketch rows  : %zu\n", result->sketch_rows);
  std::printf("  coverr / certified budget: %.3f\n",
              CovarianceError(global, result->sketch) /
                  SketchErrorBudget(global, 6.0 * eps, k));

  // The dashboard: top singular directions of the fleet-wide covariance.
  auto svd = ComputeSvd(result->sketch);
  if (svd.ok()) {
    std::printf("\n  fleet spectrum (from sketch): ");
    for (size_t i = 0; i < std::min<size_t>(6, svd->singular_values.size());
         ++i) {
      std::printf("%.1f ", svd->singular_values[i]);
    }
    auto truth = SingularValues(global);
    if (truth.ok()) {
      std::printf("\n  fleet spectrum (ground truth): ");
      for (size_t i = 0; i < 6; ++i) std::printf("%.1f ", (*truth)[i]);
    }
    std::printf(
        "\n  (FD shrinkage biases sketch singular values downward by a "
        "bounded amount — the covariance guarantee is on directions and "
        "quadratic forms, not raw magnitudes.)\n");
  }
  return 0;
}
