// Distributed ridge regression from a covariance sketch — a downstream
// ML consumer of the paper's machinery. Feature rows live on 10 servers;
// instead of centralizing X (n*d words) we ship the Theorem 7 sketch plus
// one exact d-vector X^T y per server, then solve
// (B^T B + lambda I) w = X^T y at the coordinator.

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "query/distributed_ridge.h"
#include "workload/generators.h"
#include "workload/partition.h"

using namespace distsketch;

int main() {
  const size_t n = 20000;
  const size_t d = 32;
  const double lambda = 2000.0;  // strong regularization: the analytic bound is then informative

  // Planted linear model over correlated (low effective rank) features.
  const Matrix x = GenerateLowRankPlusNoise({.rows = n,
                                             .cols = d,
                                             .rank = 10,
                                             .decay = 0.8,
                                             .top_singular_value = 20.0,
                                             .noise_stddev = 0.3,
                                             .seed = 1});
  Rng rng(2);
  std::vector<double> w_true(d);
  for (auto& v : w_true) v = rng.NextGaussian();
  Matrix data(n, d + 1);
  for (size_t i = 0; i < n; ++i) {
    double y = 0.5 * rng.NextGaussian();
    for (size_t j = 0; j < d; ++j) {
      data(i, j) = x(i, j);
      y += x(i, j) * w_true[j];
    }
    data(i, d) = y;
  }

  auto cluster = Cluster::Create(
      PartitionRows(data, 10, PartitionScheme::kContiguous), 0.1);
  if (!cluster.ok()) return 1;

  auto result = DistributedRidge(
      *cluster, {.lambda = lambda, .eps = 0.1, .k = 10, .seed = 3});
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Exact solution for reference (the oracle sees all data).
  Matrix system = Gram(x);
  for (size_t i = 0; i < d; ++i) system(i, i) += lambda;
  auto chol = CholeskyFactor::Factorize(system);
  if (!chol.ok()) return 1;
  std::vector<double> y_vec(n);
  for (size_t i = 0; i < n; ++i) y_vec[i] = data(i, d);
  const std::vector<double> w_exact = chol->Solve(MatTVec(x, y_vec));

  double diff2 = 0.0, norm2 = 0.0;
  for (size_t j = 0; j < d; ++j) {
    diff2 += (result->weights[j] - w_exact[j]) *
             (result->weights[j] - w_exact[j]);
    norm2 += w_exact[j] * w_exact[j];
  }

  std::printf("distributed ridge over 10 servers (n=%zu, d=%zu):\n", n, d);
  std::printf("  words on the wire     : %llu\n",
              static_cast<unsigned long long>(result->comm.total_words));
  std::printf("  centralizing the data : %zu words (%.0fx more)\n",
              n * (d + 1),
              static_cast<double>(n * (d + 1)) / result->comm.total_words);
  std::printf("  ||w_sketch - w_exact|| / ||w_exact|| = %.5f\n",
              std::sqrt(diff2 / norm2));
  std::printf("  analytic bound (coverr budget/lambda) = %.5f\n",
              result->relative_error_bound);
  std::printf(
      "  (the bound is worst-case over all weight directions; the\n"
      "   empirical error is far smaller because FD's one-sided shrink\n"
      "   concentrates in the low-energy tail directions)\n");
  return 0;
}
