// sketch_tool — command-line front end for the library.
//
//   sketch_tool info   --input data.csv
//   sketch_tool sketch --input data.csv --output sketch.csv
//                      [--eps 0.2] [--k 4] [--algo fd|fastfd|sampling|svs]
//                      [--seed 42]
//   sketch_tool pca    --input data.csv --output pcs.csv
//                      [--eps 0.2] [--k 4] [--servers 8]
//
// With no --input, a synthetic low-rank demo matrix is used so the tool
// can be exercised immediately. CSV in, CSV out: one row per line.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "dist/adaptive_sketch_protocol.h"
#include "io/matrix_io.h"
#include "linalg/blas.h"
#include "linalg/svd.h"
#include "pca/pca_quality.h"
#include "pca/sketch_and_solve.h"
#include "sketch/error_metrics.h"
#include "sketch/fast_frequent_directions.h"
#include "sketch/frequent_directions.h"
#include "sketch/row_sampling.h"
#include "workload/generators.h"
#include "workload/partition.h"

using namespace distsketch;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stod(it->second);
  }
  size_t GetSize(const std::string& key, size_t fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback
                             : static_cast<size_t>(std::stoull(it->second));
  }
};

int Usage() {
  std::printf(
      "usage: sketch_tool <info|sketch|pca> [--input X.csv] [--output "
      "Y.csv]\n"
      "                   [--eps 0.2] [--k 4] [--servers 8]\n"
      "                   [--algo fd|fastfd|sampling|svs] [--seed 42]\n");
  return 2;
}

StatusOr<Matrix> LoadInput(const Args& args) {
  const std::string path = args.Get("input", "");
  if (!path.empty()) return LoadCsv(path);
  std::printf("(no --input: using a synthetic 2000x32 low-rank matrix)\n");
  return GenerateLowRankPlusNoise({.rows = 2000,
                                   .cols = 32,
                                   .rank = 6,
                                   .decay = 0.7,
                                   .top_singular_value = 50.0,
                                   .noise_stddev = 0.3,
                                   .seed = 1});
}

int RunInfo(const Matrix& a) {
  std::printf("shape: %zu x %zu\n", a.rows(), a.cols());
  std::printf("||A||_F^2: %.6g\n", SquaredFrobeniusNorm(a));
  auto svals = SingularValues(a);
  if (!svals.ok()) {
    std::printf("SVD failed: %s\n", svals.status().ToString().c_str());
    return 1;
  }
  std::printf("top singular values:");
  for (size_t i = 0; i < std::min<size_t>(8, svals->size()); ++i) {
    std::printf(" %.4g", (*svals)[i]);
  }
  std::printf("\ntail energy ||A-[A]_k||_F^2 for k=1..6:");
  double tail = 0.0;
  for (double s : *svals) tail += s * s;
  for (size_t k = 1; k <= 6 && k <= svals->size(); ++k) {
    tail -= (*svals)[k - 1] * (*svals)[k - 1];
    std::printf(" %.4g", tail);
  }
  std::printf("\n");
  return 0;
}

int RunSketch(const Args& args, const Matrix& a) {
  const double eps = args.GetDouble("eps", 0.2);
  const size_t k = args.GetSize("k", 4);
  const uint64_t seed = args.GetSize("seed", 42);
  const std::string algo = args.Get("algo", "fd");
  Matrix b;
  if (algo == "fd") {
    auto fd = FrequentDirections::FromEpsK(a.cols(), eps, k);
    if (!fd.ok()) { std::printf("%s\n", fd.status().ToString().c_str()); return 1; }
    fd->AppendRows(a);
    b = fd->Sketch();
  } else if (algo == "fastfd") {
    auto fd = FastFrequentDirections::FromEpsK(a.cols(), eps, k, seed);
    if (!fd.ok()) { std::printf("%s\n", fd.status().ToString().c_str()); return 1; }
    fd->AppendRows(a);
    b = fd->Sketch();
  } else if (algo == "sampling") {
    auto s = RowSamplingSketch::FromEps(a.cols(), eps, seed);
    if (!s.ok()) { std::printf("%s\n", s.status().ToString().c_str()); return 1; }
    s->AppendRows(a);
    b = s->Sketch();
  } else if (algo == "svs") {
    const size_t servers = args.GetSize("servers", 8);
    auto cluster = Cluster::Create(
        PartitionRows(a, servers, PartitionScheme::kRoundRobin), eps);
    if (!cluster.ok()) { std::printf("%s\n", cluster.status().ToString().c_str()); return 1; }
    AdaptiveSketchProtocol protocol({.eps = eps, .k = k, .seed = seed});
    auto result = protocol.Run(*cluster);
    if (!result.ok()) { std::printf("%s\n", result.status().ToString().c_str()); return 1; }
    b = result->sketch;
    std::printf("distributed run: %llu words over %d rounds\n",
                static_cast<unsigned long long>(result->comm.total_words),
                result->comm.num_rounds);
  } else {
    return Usage();
  }
  std::printf("sketch: %zu rows (input %zu), coverr = %.6g, budget = %.6g\n",
              b.rows(), a.rows(), CovarianceError(a, b),
              SketchErrorBudget(a, eps, k));
  const std::string out = args.Get("output", "");
  if (!out.empty()) {
    const Status st = SaveCsv(b, out);
    if (!st.ok()) { std::printf("%s\n", st.ToString().c_str()); return 1; }
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int RunPca(const Args& args, const Matrix& a) {
  const double eps = args.GetDouble("eps", 0.2);
  const size_t k = args.GetSize("k", 4);
  const size_t servers = args.GetSize("servers", 8);
  auto cluster = Cluster::Create(
      PartitionRows(a, servers, PartitionScheme::kRoundRobin), eps);
  if (!cluster.ok()) { std::printf("%s\n", cluster.status().ToString().c_str()); return 1; }
  SketchAndSolvePca protocol(
      {.k = k, .eps = eps, .seed = args.GetSize("seed", 42)});
  auto result = protocol.Run(*cluster);
  if (!result.ok()) { std::printf("%s\n", result.status().ToString().c_str()); return 1; }
  const PcaQualityReport q = EvaluatePcaQuality(a, result->components);
  std::printf(
      "top-%zu PCs via Theorem 9 over %zu servers: %llu words, "
      "proj_err/optimal = %.4f, captured variance = %.1f%%\n",
      k, servers,
      static_cast<unsigned long long>(result->comm.total_words), q.ratio,
      100.0 * (1.0 - q.projection_error / SquaredFrobeniusNorm(a)));
  const std::string out = args.Get("output", "");
  if (!out.empty()) {
    const Status st = SaveCsv(result->components, out);
    if (!st.ok()) { std::printf("%s\n", st.ToString().c_str()); return 1; }
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return Usage();
    args.flags[argv[i] + 2] = argv[i + 1];
  }
  auto input = LoadInput(args);
  if (!input.ok()) {
    std::printf("failed to load input: %s\n",
                input.status().ToString().c_str());
    return 1;
  }
  if (args.command == "info") return RunInfo(*input);
  if (args.command == "sketch") return RunSketch(args, *input);
  if (args.command == "pca") return RunPca(args, *input);
  return Usage();
}
