// The deterministic/randomized gap, end to end, on one instance.
//
// Theorem 3 says any deterministic protocol for an (eps,0)-sketch of +-1
// inputs must communicate Omega(s*d/eps) bits; the FD-merge protocol
// matches it, and the paper's randomized SVS protocol beats it. This
// example runs both on the lower bound's own hard-instance family and
// prints the gap next to the Omega(s*d/eps) line — randomization is the
// only thing separating the two, exactly the paper's point.

#include <cstdio>

#include "dist/fd_merge_protocol.h"
#include "dist/svs_protocol.h"
#include "linalg/blas.h"
#include "sketch/error_metrics.h"
#include "workload/generators.h"
#include "workload/partition.h"

using namespace distsketch;

int main() {
  const size_t d = 48;
  const size_t s = 128;
  const double eps = 1.0 / 16.0;

  // The hard instance of §2.1: every server holds +-1 rows. The
  // randomized advantage grows with s (sqrt(s) vs s), so we use a wide
  // fleet.
  const Matrix a = GenerateSignMatrix(s * 64, d, 3);
  auto cluster = Cluster::Create(
      PartitionRows(a, s, PartitionScheme::kContiguous), eps);
  if (!cluster.ok()) return 1;

  std::printf(
      "hard instance: %zu servers x 64 rows of +-1 in dim %zu, eps = "
      "1/16\n\n",
      s, d);

  FdMergeProtocol det({.eps = eps, .k = 0});
  auto det_result = det.Run(*cluster);
  if (!det_result.ok()) return 1;

  SvsProtocol rand_protocol(
      {.alpha = eps / 4.0, .delta = 0.1, .seed = 17});
  auto rand_result = rand_protocol.Run(*cluster);
  if (!rand_result.ok()) return 1;

  const double budget = eps * SquaredFrobeniusNorm(a);
  const uint64_t lb_words = static_cast<uint64_t>(s * d / eps);
  std::printf("  deterministic FD-merge : %8llu words  (coverr/budget %.2f)\n",
              static_cast<unsigned long long>(det_result->comm.total_words),
              CovarianceError(a, det_result->sketch) / budget);
  std::printf("  Omega(s*d/eps) line    : %8llu words  (Theorem 3: no\n"
              "                           deterministic protocol can do "
              "better)\n",
              static_cast<unsigned long long>(lb_words));
  std::printf("  randomized SVS         : %8llu words  (coverr/budget %.2f)\n",
              static_cast<unsigned long long>(rand_result->comm.total_words),
              CovarianceError(a, rand_result->sketch) / budget);
  std::printf(
      "\n  The randomized protocol undercuts the deterministic lower "
      "bound by %.1fx on the very instances that prove the bound — the "
      "separation of Section 3.\n",
      static_cast<double>(lb_words) / rand_result->comm.total_words);
  return 0;
}
